// Tests for the observability stack: TraceRecorder span trees and
// critical-path decomposition, Chrome trace_event export, bucketed
// histograms, labeled metrics rendering, Monitor time series, NPU-grid
// profiling, and the end-to-end traced-retransmit integration scenario.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/flightrec.h"
#include "common/stats.h"
#include "common/trace.h"
#include "core/cluster.h"
#include "framework/autoscaler.h"
#include "framework/metrics.h"
#include "framework/monitor.h"
#include "framework/slo_monitor.h"
#include "framework/timeline.h"
#include "net/network.h"
#include "net/trace.h"
#include "nicsim/profiler.h"
#include "sim/shard_stats.h"
#include "workloads/lambdas.h"

namespace lnic {
namespace {

using framework::Labels;
using framework::MetricsRegistry;
using trace::TraceRecorder;

// ---------------------------------------------------------------------------
// TraceRecorder

TEST(Trace, SpanTreeStructureAndAnnotations) {
  TraceRecorder recorder;
  const auto t = recorder.new_trace();
  EXPECT_NE(t, trace::kInvalidTrace);

  const auto root = recorder.start_span(t, trace::kInvalidSpan, "request", 100);
  const auto child = recorder.start_span(t, root, "rpc.call", 200);
  recorder.annotate(child, "fn", "web_server");
  recorder.end_span(child, 700);
  recorder.end_span(root, 900);

  const auto spans = recorder.trace_spans(t);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "request");
  EXPECT_EQ(spans[0].parent, trace::kInvalidSpan);
  EXPECT_EQ(spans[1].name, "rpc.call");
  EXPECT_EQ(spans[1].parent, root);
  EXPECT_EQ(spans[1].start, 200);
  EXPECT_EQ(spans[1].end, 700);
  EXPECT_FALSE(spans[1].open);
  ASSERT_EQ(spans[1].annotations.size(), 1u);
  EXPECT_EQ(spans[1].annotations[0].first, "fn");
  EXPECT_EQ(spans[1].annotations[0].second, "web_server");

  EXPECT_EQ(recorder.trace_ids(), std::vector<trace::TraceId>{t});
}

TEST(Trace, InvalidTraceAndUnknownSpanAreNoOps) {
  TraceRecorder recorder;
  EXPECT_EQ(recorder.start_span(trace::kInvalidTrace, 0, "x", 1),
            trace::kInvalidSpan);
  recorder.end_span(trace::kInvalidSpan, 5);       // must not crash
  recorder.end_span(12345, 5);                     // unknown id
  recorder.annotate(trace::kInvalidSpan, "k", "v");
  EXPECT_TRUE(recorder.empty());
}

TEST(Trace, SpanCapDropsAndCounts) {
  TraceRecorder recorder(/*max_spans=*/2);
  const auto t = recorder.new_trace();
  EXPECT_NE(recorder.start_span(t, 0, "a", 1), trace::kInvalidSpan);
  EXPECT_NE(recorder.start_span(t, 0, "b", 2), trace::kInvalidSpan);
  EXPECT_EQ(recorder.start_span(t, 0, "c", 3), trace::kInvalidSpan);
  EXPECT_EQ(recorder.size(), 2u);
  EXPECT_EQ(recorder.dropped(), 1u);
}

TEST(Trace, ChromeJsonHasCompleteEventsWithSpanIds) {
  TraceRecorder recorder;
  const auto t = recorder.new_trace();
  const auto root = recorder.start_span(t, 0, "request", microseconds(10));
  const auto child = recorder.start_span(t, root, "nic.execute",
                                         microseconds(20));
  recorder.end_span(child, microseconds(30));
  recorder.end_span(root, microseconds(40));

  const std::string json = recorder.to_chrome_json();
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"request\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"nic.execute\""), std::string::npos);
  EXPECT_NE(json.find("\"span_id\""), std::string::npos);
  EXPECT_NE(json.find("\"parent\""), std::string::npos);
}

TEST(Trace, SpanComponentMapping) {
  const auto component = [](std::string name, bool timeout = false) {
    trace::Span span;
    span.name = std::move(name);
    if (timeout) span.annotations.emplace_back("timeout", "true");
    return trace::span_component(span);
  };
  EXPECT_EQ(component("gateway.queue"), "queue");
  EXPECT_EQ(component("nic.queue"), "queue");
  EXPECT_EQ(component("nic.reassemble"), "queue");
  EXPECT_EQ(component("gateway.proxy"), "proxy");
  EXPECT_EQ(component("rpc.call"), "transport");
  EXPECT_EQ(component("rpc.attempt"), "transport");
  EXPECT_EQ(component("rpc.attempt", /*timeout=*/true), "retransmit");
  EXPECT_EQ(component("nic.execute"), "execute");
  EXPECT_EQ(component("host.kernel"), "execute");
  EXPECT_EQ(component("something.else"), "other");
}

TEST(Trace, CriticalPathComponentsSumExactlyToTotal) {
  // request [0,1000] with gateway.queue [0,100], rpc.call [100,900]
  // containing nic.execute [300,600]. The deepest-span sweep should
  // yield queue=100, transport=500 (rpc minus the nested execute),
  // execute=300, other=100 (the uncovered [900,1000] tail).
  TraceRecorder recorder;
  const auto t = recorder.new_trace();
  const auto root = recorder.start_span(t, 0, "request", 0);
  const auto queue = recorder.start_span(t, root, "gateway.queue", 0);
  recorder.end_span(queue, 100);
  const auto rpc = recorder.start_span(t, root, "rpc.call", 100);
  const auto exec = recorder.start_span(t, rpc, "nic.execute", 300);
  recorder.end_span(exec, 600);
  recorder.end_span(rpc, 900);
  recorder.end_span(root, 1000);

  const auto path = recorder.critical_path(t);
  EXPECT_EQ(path.total, 1000);
  EXPECT_EQ(path.component("queue"), 100);
  EXPECT_EQ(path.component("transport"), 500);
  EXPECT_EQ(path.component("execute"), 300);
  EXPECT_EQ(path.component("other"), 100);

  SimDuration sum = 0;
  for (const auto& [name, d] : path.components) sum += d;
  EXPECT_EQ(sum, path.total);

  const std::string summary = recorder.critical_path_summary(t);
  EXPECT_NE(summary.find("execute"), std::string::npos);
  EXPECT_NE(summary.find("transport"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Histogram

TEST(Histogram, BucketPlacementAndCumulativeCounts) {
  Histogram h({10.0, 100.0, 1000.0});
  h.observe(5.0);     // <= 10
  h.observe(10.0);    // <= 10 (inclusive upper bound)
  h.observe(50.0);    // <= 100
  h.observe(999.0);   // <= 1000
  h.observe(5000.0);  // +Inf
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 6064.0);
  ASSERT_EQ(h.buckets().size(), 4u);
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[2], 1u);
  EXPECT_EQ(h.buckets()[3], 1u);  // +Inf
  EXPECT_EQ(h.cumulative(0), 2u);
  EXPECT_EQ(h.cumulative(1), 3u);
  EXPECT_EQ(h.cumulative(2), 4u);
}

TEST(Histogram, PercentileStaysWithinBucketBounds) {
  Histogram h({10.0, 100.0, 1000.0});
  for (int i = 0; i < 90; ++i) h.observe(50.0);
  for (int i = 0; i < 10; ++i) h.observe(500.0);
  const double p50 = h.percentile(50.0);
  EXPECT_GT(p50, 10.0);
  EXPECT_LE(p50, 100.0);
  const double p99 = h.percentile(99.0);
  EXPECT_GT(p99, 100.0);
  EXPECT_LE(p99, 1000.0);
  EXPECT_EQ(Histogram{}.percentile(50.0), 0.0);  // empty
}

// ---------------------------------------------------------------------------
// MetricsRegistry: labels, sorting, exposition validity

TEST(Metrics, CounterNamePassesThrough) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.counter("requests_total").name(), "requests_total");
  // The labeled overload stores (and names) the canonical series key.
  Counter& labeled = registry.counter("requests_total", {{"fn", "web"}});
  EXPECT_EQ(labeled.name(), "requests_total{fn=web}");
}

TEST(Metrics, LabeledAndBakedKeyAddressSameSeries) {
  MetricsRegistry registry;
  registry.counter("x_total", {{"b", "2"}, {"a", "1"}}).increment(3);
  // Canonical key sorts label keys; the baked-string form must hit the
  // same series.
  EXPECT_EQ(registry.counter("x_total{a=1,b=2}").value(), 3u);
  EXPECT_TRUE(registry.has("x_total{a=1,b=2}"));
}

TEST(Metrics, RenderIsNameSortedWithQuotedLabels) {
  MetricsRegistry registry;
  registry.gauge("zeta") = 1.0;
  registry.counter("alpha_total", {{"fn", "web"}}).increment(2);
  registry.sampler("mid_latency").add(5.0);
  const std::string text = registry.render();

  const auto alpha = text.find("alpha_total{fn=\"web\"} 2");
  const auto mid = text.find("mid_latency_count 1");
  const auto zeta = text.find("zeta 1");
  ASSERT_NE(alpha, std::string::npos);
  ASSERT_NE(mid, std::string::npos);
  ASSERT_NE(zeta, std::string::npos);
  // Globally name-sorted across metric kinds.
  EXPECT_LT(alpha, mid);
  EXPECT_LT(mid, zeta);
}

TEST(Metrics, HistogramRendersConsistentBucketSumCount) {
  MetricsRegistry registry;
  auto& h = registry.histogram("lat_ns", {{"fn", "web"}}, {10.0, 100.0});
  h.observe(5.0);
  h.observe(50.0);
  h.observe(500.0);
  const std::string text = registry.render();
  EXPECT_NE(text.find("lat_ns_bucket{fn=\"web\",le=\"10\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("lat_ns_bucket{fn=\"web\",le=\"100\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("lat_ns_bucket{fn=\"web\",le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("lat_ns_sum{fn=\"web\"} 555"), std::string::npos);
  EXPECT_NE(text.find("lat_ns_count{fn=\"web\"} 3"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Sampler percentile edge cases

TEST(Sampler, PercentileEdgeCases) {
  Sampler empty;
  EXPECT_DOUBLE_EQ(empty.percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.percentile(100.0), 0.0);

  Sampler single;
  single.add(42.0);
  EXPECT_DOUBLE_EQ(single.percentile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(single.percentile(50.0), 42.0);
  EXPECT_DOUBLE_EQ(single.percentile(100.0), 42.0);

  Sampler pair;
  pair.add(1.0);
  pair.add(2.0);
  EXPECT_DOUBLE_EQ(pair.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(pair.percentile(100.0), 2.0);
}

// ---------------------------------------------------------------------------
// Monitor time series

TEST(Monitor, ScrapeTimeSeriesStopsWithTimer) {
  sim::Simulator sim;
  net::Network network(sim);
  auto backend = backends::make_backend(backends::BackendKind::kLambdaNic,
                                        sim, network);
  ASSERT_TRUE(backend->deploy(workloads::make_standard_workloads()).ok());
  framework::Monitor monitor(sim, milliseconds(100));
  monitor.watch_backend("w", backend.get());
  monitor.start();
  sim.run_until(seconds(1));
  const auto scrapes_at_stop = monitor.scrapes();
  EXPECT_GE(scrapes_at_stop, 9u);
  monitor.stop();
  sim.run_until(seconds(3));
  EXPECT_EQ(monitor.scrapes(), scrapes_at_stop);  // no scrapes after stop

  // Manual scrape still works and the gauges re-resolve (last value wins).
  monitor.scrape();
  EXPECT_EQ(monitor.scrapes(), scrapes_at_stop + 1);
  EXPECT_TRUE(monitor.metrics().has("backend_completed{node=w}"));
  EXPECT_NE(monitor.metrics().render().find("monitor_scrapes"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// NPU-grid profiler

TEST(NpuProfiler, BusyAttributionPerThreadCoreAndLambda) {
  nicsim::NpuProfiler profiler(/*threads=*/4, /*threads_per_core=*/2);
  EXPECT_EQ(profiler.cores(), 2u);

  profiler.on_dispatch(0, /*workload=*/7, 100);
  profiler.on_dispatch(1, /*workload=*/8, 100);
  profiler.on_release(0, 400);  // thread 0 busy 300
  profiler.on_release(1, 200);  // thread 1 busy 100

  EXPECT_EQ(profiler.thread_busy_ns(0, 1000), 300);
  EXPECT_EQ(profiler.thread_busy_ns(1, 1000), 100);
  EXPECT_EQ(profiler.core_busy_ns(0, 1000), 400);  // threads 0+1
  EXPECT_EQ(profiler.core_busy_ns(1, 1000), 0);
  EXPECT_EQ(profiler.lambda_busy_ns(7), 300);
  EXPECT_EQ(profiler.lambda_dispatches(7), 1u);
  EXPECT_EQ(profiler.lambda_busy_ns(8), 100);
  // 400 busy ns over 4 threads * 1000 ns.
  EXPECT_DOUBLE_EQ(profiler.grid_utilization(1000), 0.1);

  // An open interval counts up to `now`.
  profiler.on_dispatch(2, 7, 500);
  EXPECT_EQ(profiler.thread_busy_ns(2, 800), 300);

  const std::string report = profiler.text_report(1000);
  EXPECT_NE(report.find("core"), std::string::npos);
}

TEST(NpuProfiler, RingsBoundTimelineAndDepthSamples) {
  nicsim::NpuProfiler profiler(/*threads=*/1, /*threads_per_core=*/1,
                               /*max_samples=*/4);
  for (int i = 0; i < 10; ++i) {
    const SimTime at = i * 100;
    profiler.on_dispatch(0, 1, at);
    profiler.on_release(0, at + 50);
    profiler.on_queue_depth(at, static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(profiler.timeline(0).size(), 4u);
  EXPECT_EQ(profiler.timeline(0).back().end, 950);
  EXPECT_EQ(profiler.queue_depth_samples().size(), 4u);
  EXPECT_EQ(profiler.peak_queue_depth(), 9u);
  // Cumulative totals stay exact despite ring eviction.
  EXPECT_EQ(profiler.thread_busy_ns(0, 10000), 500);
  EXPECT_EQ(profiler.lambda_dispatches(1), 10u);
}

// ---------------------------------------------------------------------------
// Integration: traced request with a forced retransmission

TEST(Observability, TracedRetransmitYieldsConnectedSpanTree) {
  core::ClusterConfig config;
  config.workers = 1;
  config.gateway.rpc.retransmit_timeout = milliseconds(10);
  core::Cluster cluster(config);

  TraceRecorder recorder;
  cluster.gateway().set_tracer(&recorder);
  cluster.worker(0).set_tracer(&recorder);

  ASSERT_TRUE(cluster.deploy(workloads::make_standard_workloads()).ok());
  cluster.wait_until_ready();

  // Swallow the first attempt; the retransmit timer resends at +10 ms
  // into a healed fabric.
  cluster.network().set_faults(net::FaultConfig{.drop_probability = 1.0});
  cluster.sim().schedule(milliseconds(5), [&cluster] {
    cluster.network().set_faults(net::FaultConfig{});
  });

  const std::vector<std::uint8_t> rgba(64 * 64 * 4, 0x5A);
  auto response = cluster.invoke_and_wait(
      "image_transformer", workloads::encode_image_request(64, 64, rgba));
  ASSERT_TRUE(response.ok()) << response.error().message;
  EXPECT_GE(response.value().retries, 1u);

  const auto traces = recorder.trace_ids();
  ASSERT_EQ(traces.size(), 1u);
  const auto spans = recorder.trace_spans(traces.front());
  ASSERT_GE(spans.size(), 5u);

  // One connected tree: exactly one root, every parent resolves.
  std::set<trace::SpanId> ids;
  for (const auto& span : spans) ids.insert(span.id);
  std::size_t roots = 0;
  for (const auto& span : spans) {
    if (ids.count(span.parent) == 0) ++roots;
    EXPECT_FALSE(span.open) << span.name;
  }
  EXPECT_EQ(roots, 1u);

  std::set<std::string> kinds;
  for (const auto& span : spans) kinds.insert(span.name);
  EXPECT_GE(kinds.size(), 5u);
  EXPECT_TRUE(kinds.count("request"));
  EXPECT_TRUE(kinds.count("rpc.attempt"));
  EXPECT_TRUE(kinds.count("nic.reassemble"));
  EXPECT_TRUE(kinds.count("nic.execute"));

  // Critical-path components sum exactly to the end-to-end duration and
  // attribute the dead first attempt to "retransmit".
  const auto path = recorder.critical_path(traces.front());
  EXPECT_GT(path.component("retransmit"), 0);
  SimDuration sum = 0;
  for (const auto& [name, d] : path.components) sum += d;
  EXPECT_EQ(sum, path.total);
  // The root span covers the whole gateway round trip, so it can only
  // be as long as (or longer than) the rpc-layer latency.
  EXPECT_GE(path.total, response.value().latency);
}

// ---------------------------------------------------------------------------
// Flight recorder

TEST(FlightRecorder, RingBoundsEvictionAndCounters) {
  flightrec::FlightRecorder ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  for (std::uint64_t i = 0; i < 10; ++i) {
    ring.record(static_cast<SimTime>(i), flightrec::Kind::kOther, i, 2 * i,
                "event " + std::to_string(i));
  }
  EXPECT_EQ(ring.recorded(), 10u);
  EXPECT_EQ(ring.evicted(), 6u);
  const auto events = ring.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest retained first, newest last.
  EXPECT_EQ(events.front().a, 6u);
  EXPECT_EQ(events.back().a, 9u);
  EXPECT_EQ(events.back().b, 18u);
  EXPECT_EQ(events.back().detail, "event 9");

  // Shrinking drops from the old end immediately.
  ring.set_capacity(2);
  ASSERT_EQ(ring.snapshot().size(), 2u);
  EXPECT_EQ(ring.snapshot().front().a, 8u);

  ring.clear();
  EXPECT_EQ(ring.recorded(), 0u);
  EXPECT_EQ(ring.evicted(), 0u);
  EXPECT_NE(ring.dump().find("empty"), std::string::npos);
}

TEST(FlightRecorder, GatewayShedSiteRecordsAnomalies) {
  auto& ring = flightrec::FlightRecorder::global();
  ring.clear();

  core::ClusterConfig config;
  config.workers = 1;
  // Tight limiter: 1 in flight, 1 queued — a burst of 8 must shed.
  config.gateway.max_inflight_per_function = 1;
  config.gateway.max_queue_depth = 1;
  core::Cluster cluster(config);
  ASSERT_TRUE(cluster.deploy(workloads::make_standard_workloads()).ok());
  cluster.wait_until_ready();

  int done = 0;
  for (int i = 0; i < 8; ++i) {
    cluster.invoke("web_server", workloads::encode_web_request(i & 3),
                   [&done](Result<proto::RpcResponse>) { ++done; });
  }
  const SimTime deadline = cluster.sim().now() + seconds(10);
  while (done < 8 && cluster.sim().now() < deadline) {
    cluster.sim().run_until(cluster.sim().now() + milliseconds(10));
  }
  ASSERT_EQ(done, 8);

  bool saw_shed = false;
  for (const auto& event : ring.snapshot()) {
    if (event.kind == flightrec::Kind::kGatewayShed) saw_shed = true;
  }
  EXPECT_TRUE(saw_shed);
  EXPECT_NE(ring.dump().find("gateway-shed"), std::string::npos);
  ring.clear();
}

// ---------------------------------------------------------------------------
// Shard stall accounting

TEST(ShardStats, CollectorAccountingIdentity) {
  sim::ShardStatsCollector collector(2);
  // Two windows; shard 1's second busy reading exceeds the window wall
  // (clock jitter) and must clamp so barrier never underflows.
  collector.record_window(/*t0=*/0, /*end=*/99, /*lookahead=*/100,
                          /*eot_extended=*/false,
                          /*wall_ns=*/1000, {600, 300}, {10, 20});
  collector.record_window(100, 199, 100, false, 2000, {1500, 2500}, {5, 5});
  collector.add_run_wall(3500);  // 3000 ns of windows + 500 ns sync/merge

  const sim::ShardStats stats = collector.snapshot();
  EXPECT_EQ(stats.shards, 2u);
  EXPECT_EQ(stats.windows, 2u);
  EXPECT_EQ(stats.total_wall_ns, 3500u);
  EXPECT_EQ(stats.window_wall_ns, 3000u);
  EXPECT_EQ(stats.sync_wall_ns(), 500u);
  EXPECT_EQ(stats.busy_ns[0], 2100u);
  EXPECT_EQ(stats.busy_ns[1], 2300u);  // 300 + clamp(2500 -> 2000)
  EXPECT_EQ(stats.events[0], 15u);
  EXPECT_EQ(stats.events[1], 25u);
  // The identity the bench gates on: per shard, busy + barrier equals
  // the window wall exactly, so adding sync reconstructs the total.
  for (unsigned s = 0; s < stats.shards; ++s) {
    EXPECT_EQ(stats.busy_ns[s] + stats.barrier_ns[s], stats.window_wall_ns);
    EXPECT_EQ(stats.busy_ns[s] + stats.barrier_ns[s] + stats.sync_wall_ns(),
              stats.total_wall_ns);
  }
  // Windows span their full lookahead horizon here.
  EXPECT_DOUBLE_EQ(stats.lookahead_utilization, 1.0);
  ASSERT_EQ(stats.recent.size(), 2u);
  EXPECT_EQ(stats.recent[0].t0, 0);
  EXPECT_EQ(stats.recent[1].wall_ns, 2000u);

  collector.set_cross_row(0, {0, 7});
  collector.set_cross_row(1, {3, 0});
  const sim::ShardStats with_cross = collector.snapshot();
  EXPECT_EQ(with_cross.cross(0, 1), 7u);
  EXPECT_EQ(with_cross.cross(1, 0), 3u);
  EXPECT_EQ(with_cross.cross_posts[0], 7u);
  EXPECT_EQ(with_cross.cross_posts[1], 3u);
}

TEST(ShardStats, ConfigurableBarrierOutlierThreshold) {
  // The outlier pager compares each window's wall against the running
  // mean; benches tighten the default 8x multiplier to hear about
  // smaller stalls. Detection starts after a 32-window burn-in so the
  // first noisy samples don't page.
  sim::ShardStatsCollector collector(1);
  collector.set_outlier_threshold(3.0);
  for (int i = 0; i < 40; ++i) {
    const std::uint64_t wall = (i == 36) ? 10'000 : 1'000;
    collector.record_window(i * 100, i * 100 + 99, 100, false, wall,
                            {wall}, {1});
  }
  const sim::ShardStats stats = collector.snapshot();
  EXPECT_DOUBLE_EQ(stats.outlier_threshold, 3.0);
  EXPECT_EQ(stats.barrier_outliers, 1u);

  // The default 8x multiplier stays quiet on the same shape of run with
  // a 7x-mean spike.
  sim::ShardStatsCollector lax(1);
  for (int i = 0; i < 40; ++i) {
    const std::uint64_t wall = (i == 36) ? 7'000 : 1'000;
    lax.record_window(i * 100, i * 100 + 99, 100, false, wall, {wall}, {1});
  }
  EXPECT_DOUBLE_EQ(lax.snapshot().outlier_threshold, 8.0);
  EXPECT_EQ(lax.snapshot().barrier_outliers, 0u);
}

TEST(ShardStats, DelegatedSingleShardRunCountsAsBusy) {
  // shards == 1 bypasses the window machinery; the whole run is shard
  // 0 busy time and the identity still holds (sync == 0).
  sim::ShardStatsCollector collector(1);
  collector.add_delegated_run(/*wall_ns=*/5000, /*events=*/42);
  const sim::ShardStats stats = collector.snapshot();
  EXPECT_EQ(stats.windows, 0u);
  EXPECT_EQ(stats.total_wall_ns, 5000u);
  EXPECT_EQ(stats.busy_ns[0], 5000u);
  EXPECT_EQ(stats.barrier_ns[0], 0u);
  EXPECT_EQ(stats.sync_wall_ns(), 0u);
  EXPECT_EQ(stats.events[0], 42u);
}

TEST(ShardStats, ClusterRunExportsShardMetrics) {
  core::ClusterConfig config;
  config.workers = 2;
  config.shards = 2;
  core::Cluster cluster(config);
  ASSERT_TRUE(cluster.deploy(workloads::make_standard_workloads()).ok());
  cluster.wait_until_ready();
  for (int i = 0; i < 5; ++i) {
    auto response = cluster.invoke_and_wait(
        "web_server", workloads::encode_web_request(i & 3));
    ASSERT_TRUE(response.ok()) << response.error().message;
  }

  const sim::ShardStats stats = cluster.sharded().shard_stats();
  EXPECT_EQ(stats.shards, 2u);
  EXPECT_GT(stats.windows, 0u);
  EXPECT_GT(stats.total_wall_ns, 0u);
  for (unsigned s = 0; s < stats.shards; ++s) {
    EXPECT_EQ(stats.busy_ns[s] + stats.barrier_ns[s], stats.window_wall_ns);
  }
  // Matrix row sums equal the engine's cross-post counter.
  std::uint64_t matrix_total = 0;
  for (unsigned s = 0; s < stats.shards; ++s) {
    matrix_total += stats.cross_posts[s];
  }
  EXPECT_EQ(matrix_total, cluster.sharded().cross_shard_posts());
  EXPECT_GT(stats.lookahead_utilization, 0.0);
  EXPECT_LE(stats.lookahead_utilization, 1.0);
  EXPECT_NE(stats.to_string().find("stall breakdown"), std::string::npos);

  framework::Monitor monitor(cluster.sim());
  monitor.watch_sharded(&cluster.sharded());
  monitor.scrape();
  const std::string rendered = monitor.metrics().render();
  EXPECT_NE(rendered.find("sim_shard_windows_total"), std::string::npos);
  EXPECT_NE(rendered.find("sim_shard_busy_ns_total{shard=\"0\"}"),
            std::string::npos);
  EXPECT_NE(rendered.find("sim_shard_barrier_ns_total{shard=\"1\"}"),
            std::string::npos);
  EXPECT_NE(rendered.find("sim_shard_cross_events_total"), std::string::npos);
}

// ---------------------------------------------------------------------------
// SLO burn-rate monitor

TEST(SloMonitor, MultiWindowBurnEdgeTriggeredAlerts) {
  sim::Simulator sim;
  MetricsRegistry registry;
  framework::BurnRateConfig config;
  config.objective = 0.9;  // 10% error budget
  config.fast_window = seconds(5);
  config.slow_window = seconds(20);
  config.warn_burn = 2.0;
  config.page_burn = 5.0;

  std::uint64_t offered = 0;
  std::uint64_t bad = 0;
  framework::SloMonitor monitor(
      sim, registry, config,
      [&](const std::string&) {
        return framework::BurnSample{offered, bad};
      });
  monitor.track("acme/web");

  std::vector<framework::AlertSeverity> alerts;
  monitor.set_alert_handler([&](const std::string& key,
                                framework::AlertSeverity severity, double,
                                double) {
    EXPECT_EQ(key, "acme/web");
    alerts.push_back(severity);
  });

  // One evaluation per simulated second, counters bumped beforehand.
  const auto tick = [&](std::uint64_t add_offered, std::uint64_t add_bad) {
    offered += add_offered;
    bad += add_bad;
    sim.run_until(sim.now() + seconds(1));
    monitor.evaluate();
  };

  // 10 healthy seconds: no burn, no alerts.
  for (int s = 0; s < 10; ++s) tick(100, 0);
  EXPECT_EQ(monitor.severity("acme/web"), framework::AlertSeverity::kNone);
  EXPECT_DOUBLE_EQ(monitor.fast_burn("acme/web"), 0.0);

  // 25 seconds at 50% violations: the fast window saturates at burn
  // 5.0 quickly, but the slow window still averages in the healthy
  // prefix — so the monitor escalates to warn first and pages only
  // once the healthy data ages out of the slow window. Each severity
  // fires exactly once (edge-triggered).
  for (int s = 0; s < 25; ++s) tick(100, 50);
  EXPECT_DOUBLE_EQ(monitor.fast_burn("acme/web"), 5.0);
  EXPECT_DOUBLE_EQ(monitor.slow_burn("acme/web"), 5.0);
  EXPECT_EQ(monitor.severity("acme/web"), framework::AlertSeverity::kPage);
  ASSERT_EQ(alerts.size(), 2u);
  EXPECT_EQ(alerts[0], framework::AlertSeverity::kWarn);
  EXPECT_EQ(alerts[1], framework::AlertSeverity::kPage);

  // Recovery: severity decays without firing new alerts.
  for (int s = 0; s < 25; ++s) tick(100, 0);
  EXPECT_EQ(monitor.severity("acme/web"), framework::AlertSeverity::kNone);
  EXPECT_EQ(alerts.size(), 2u);

  // Tenant label derives from the key's prefix; counters recorded the
  // two escalations.
  const std::string rendered = registry.render();
  EXPECT_NE(rendered.find("slo_burn_rate{fn=\"acme/web\",tenant=\"acme\"}"),
            std::string::npos);
  EXPECT_NE(
      rendered.find("slo_alerts_total{severity=\"warn\",tenant=\"acme\"} 1"),
      std::string::npos);
  EXPECT_NE(
      rendered.find("slo_alerts_total{severity=\"page\",tenant=\"acme\"} 1"),
      std::string::npos);
  EXPECT_GT(monitor.evaluations(), 0u);
}

TEST(SloMonitor, HistogramBurnSourceCountsTailObservations) {
  MetricsRegistry registry;
  auto& h = registry.histogram("rpc_latency_ns", {{"fn", "web"}},
                               {1000.0, 10000.0});
  h.observe(500.0);
  h.observe(5000.0);
  h.observe(50000.0);
  // A different fn label must not leak into "web" (delimiter-checked
  // label matching, not substring).
  registry.histogram("rpc_latency_ns", {{"fn", "webx"}}, {1000.0, 10000.0})
      .observe(99999.0);

  const auto source = framework::histogram_burn_source(
      registry, "rpc_latency_ns", /*bound_ns=*/10000.0);
  const auto sample = source("web");
  EXPECT_EQ(sample.offered, 3u);
  EXPECT_EQ(sample.bad, 1u);  // only the 50 us observation is late
  const auto other = source("absent");
  EXPECT_EQ(other.offered, 0u);
  EXPECT_EQ(other.bad, 0u);
}

TEST(Autoscaler, SloAlertScalesUpImmediately) {
  sim::Simulator sim;
  net::Network network(sim);
  framework::Gateway gateway(sim, network);
  framework::AutoscalerConfig config;
  config.max_replicas = 2;
  std::map<std::string, std::uint32_t> provisioned;
  framework::Autoscaler scaler(
      sim, gateway, config,
      [&](const std::string& name, std::uint32_t replicas) {
        provisioned[name] = replicas;
      });
  scaler.track("web");
  EXPECT_EQ(scaler.replicas("web"), 1u);

  // Warn resets the scale-down streak but never grows the set.
  scaler.on_slo_alert("web", /*page=*/false);
  EXPECT_EQ(scaler.replicas("web"), 1u);

  // Page adds a replica immediately, clamped at max_replicas.
  scaler.on_slo_alert("web", /*page=*/true);
  EXPECT_EQ(scaler.replicas("web"), 2u);
  EXPECT_EQ(provisioned["web"], 2u);
  scaler.on_slo_alert("web", /*page=*/true);
  EXPECT_EQ(scaler.replicas("web"), 2u);

  // Unknown functions are ignored, not created.
  scaler.on_slo_alert("ghost", /*page=*/true);
  EXPECT_EQ(scaler.replicas("ghost"), 0u);
}

// ---------------------------------------------------------------------------
// Unified timeline

TEST(Timeline, MergedExportHasRequestNicAndShardTracks) {
  core::ClusterConfig config;
  config.workers = 2;
  config.shards = 2;
  core::Cluster cluster(config);

  TraceRecorder recorder;
  cluster.gateway().set_tracer(&recorder);
  framework::TimelineInputs inputs;
  for (std::size_t i = 0; i < cluster.worker_count(); ++i) {
    cluster.worker(i).set_tracer(&recorder);
    auto* nic =
        dynamic_cast<backends::LambdaNicBackend*>(&cluster.worker(i));
    ASSERT_NE(nic, nullptr);
    nic->nic().enable_profiler();
    inputs.nics.emplace_back("worker" + std::to_string(i), &nic->nic());
  }

  // Tenant-namespaced deploy so nic.* spans carry tenant annotations.
  ASSERT_TRUE(
      cluster.deploy(workloads::make_standard_workloads(), "acme").ok());
  cluster.wait_until_ready();
  for (int i = 0; i < 6; ++i) {
    auto response = cluster.invoke_and_wait(
        "acme/web_server", workloads::encode_web_request(i & 3));
    ASSERT_TRUE(response.ok()) << response.error().message;
  }

  inputs.tracer = &recorder;
  inputs.sharded = &cluster.sharded();
  const std::string json = framework::export_timeline(inputs);

  // All three sources in one JSON document.
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ns\""), std::string::npos);
  EXPECT_NE(json.find("gateway.proxy"), std::string::npos);  // request spans
  EXPECT_NE(json.find("nic:worker0"), std::string::npos);    // NPU process
  EXPECT_NE(json.find("\"npu 0\""), std::string::npos);      // NPU track
  EXPECT_NE(json.find("sim shards"), std::string::npos);     // shard process
  EXPECT_NE(json.find("shard.window"), std::string::npos);   // shard spans
  EXPECT_NE(json.find("\"barrier_ns\""), std::string::npos);
  // Tenant ids ride both the trace spans and the profiler tracks.
  EXPECT_NE(json.find("\"tenant\""), std::string::npos);
}

TEST(Monitor, ExportsPacketTraceEvictions) {
  sim::Simulator sim;
  net::PacketTracer tracer;
  tracer.set_capacity(2);
  net::Packet packet;
  packet.src = 1;
  packet.dst = 2;
  for (int i = 0; i < 5; ++i) {
    tracer.record(packet, static_cast<SimTime>(i), /*dropped=*/false);
  }
  EXPECT_EQ(tracer.evicted(), 3u);

  framework::Monitor monitor(sim);
  monitor.watch_packet_tracer(&tracer);
  monitor.scrape();
  EXPECT_NE(monitor.metrics().render().find("packet_trace_evicted_total 3"),
            std::string::npos);
}

TEST(Monitor, ExportsKvStoreAndCacheServerMetrics) {
  sim::Simulator sim;
  net::Network network(sim);
  kvstore::TxnStoreConfig config;
  config.protocol = kvstore::LockProtocol::kWaitDie;
  kvstore::TxnStore store(sim, network, config);
  store.load(1, 10);
  kvstore::TxnRequest req;
  req.ops.push_back({kvstore::OpKind::kRead, 1, 0, 0});
  req.ops.push_back({kvstore::OpKind::kRmw, 1, 1, 0});
  store.execute(std::move(req), [](const kvstore::TxnResult&) {});
  sim.run();

  kvstore::CacheServer cache(sim, network);
  cache.put(5, 50);
  std::uint64_t v = 0;
  cache.get(5, v);

  framework::Monitor monitor(sim);
  monitor.watch_kv("txn0", &store);
  monitor.watch_cache("cache0", &cache);
  monitor.scrape();
  const std::string rendered = monitor.metrics().render();
  EXPECT_NE(rendered.find("kv_ops_total{node=\"txn0\",op=\"txn\"} 1"),
            std::string::npos)
      << rendered;
  EXPECT_NE(
      rendered.find("kv_txn_commits_total{node=\"txn0\",proto=\"wait_die\"} 1"),
      std::string::npos)
      << rendered;
  EXPECT_NE(rendered.find("kv_txn_aborts_total{node=\"txn0\",proto=\"wait_die\"}"),
            std::string::npos);
  EXPECT_NE(rendered.find("kv_cache_hit_ratio{node=\"txn0\"}"),
            std::string::npos);
  EXPECT_NE(rendered.find("kv_ops_total{node=\"cache0\",op=\"set\"} 1"),
            std::string::npos)
      << rendered;
  EXPECT_NE(rendered.find("kv_cache_hit_ratio{node=\"cache0\"} 1"),
            std::string::npos)
      << rendered;
}

}  // namespace
}  // namespace lnic
