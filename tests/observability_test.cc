// Tests for the observability stack: TraceRecorder span trees and
// critical-path decomposition, Chrome trace_event export, bucketed
// histograms, labeled metrics rendering, Monitor time series, NPU-grid
// profiling, and the end-to-end traced-retransmit integration scenario.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/trace.h"
#include "core/cluster.h"
#include "framework/metrics.h"
#include "framework/monitor.h"
#include "net/network.h"
#include "nicsim/profiler.h"
#include "workloads/lambdas.h"

namespace lnic {
namespace {

using framework::Labels;
using framework::MetricsRegistry;
using trace::TraceRecorder;

// ---------------------------------------------------------------------------
// TraceRecorder

TEST(Trace, SpanTreeStructureAndAnnotations) {
  TraceRecorder recorder;
  const auto t = recorder.new_trace();
  EXPECT_NE(t, trace::kInvalidTrace);

  const auto root = recorder.start_span(t, trace::kInvalidSpan, "request", 100);
  const auto child = recorder.start_span(t, root, "rpc.call", 200);
  recorder.annotate(child, "fn", "web_server");
  recorder.end_span(child, 700);
  recorder.end_span(root, 900);

  const auto spans = recorder.trace_spans(t);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "request");
  EXPECT_EQ(spans[0].parent, trace::kInvalidSpan);
  EXPECT_EQ(spans[1].name, "rpc.call");
  EXPECT_EQ(spans[1].parent, root);
  EXPECT_EQ(spans[1].start, 200);
  EXPECT_EQ(spans[1].end, 700);
  EXPECT_FALSE(spans[1].open);
  ASSERT_EQ(spans[1].annotations.size(), 1u);
  EXPECT_EQ(spans[1].annotations[0].first, "fn");
  EXPECT_EQ(spans[1].annotations[0].second, "web_server");

  EXPECT_EQ(recorder.trace_ids(), std::vector<trace::TraceId>{t});
}

TEST(Trace, InvalidTraceAndUnknownSpanAreNoOps) {
  TraceRecorder recorder;
  EXPECT_EQ(recorder.start_span(trace::kInvalidTrace, 0, "x", 1),
            trace::kInvalidSpan);
  recorder.end_span(trace::kInvalidSpan, 5);       // must not crash
  recorder.end_span(12345, 5);                     // unknown id
  recorder.annotate(trace::kInvalidSpan, "k", "v");
  EXPECT_TRUE(recorder.empty());
}

TEST(Trace, SpanCapDropsAndCounts) {
  TraceRecorder recorder(/*max_spans=*/2);
  const auto t = recorder.new_trace();
  EXPECT_NE(recorder.start_span(t, 0, "a", 1), trace::kInvalidSpan);
  EXPECT_NE(recorder.start_span(t, 0, "b", 2), trace::kInvalidSpan);
  EXPECT_EQ(recorder.start_span(t, 0, "c", 3), trace::kInvalidSpan);
  EXPECT_EQ(recorder.size(), 2u);
  EXPECT_EQ(recorder.dropped(), 1u);
}

TEST(Trace, ChromeJsonHasCompleteEventsWithSpanIds) {
  TraceRecorder recorder;
  const auto t = recorder.new_trace();
  const auto root = recorder.start_span(t, 0, "request", microseconds(10));
  const auto child = recorder.start_span(t, root, "nic.execute",
                                         microseconds(20));
  recorder.end_span(child, microseconds(30));
  recorder.end_span(root, microseconds(40));

  const std::string json = recorder.to_chrome_json();
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"request\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"nic.execute\""), std::string::npos);
  EXPECT_NE(json.find("\"span_id\""), std::string::npos);
  EXPECT_NE(json.find("\"parent\""), std::string::npos);
}

TEST(Trace, SpanComponentMapping) {
  const auto component = [](std::string name, bool timeout = false) {
    trace::Span span;
    span.name = std::move(name);
    if (timeout) span.annotations.emplace_back("timeout", "true");
    return trace::span_component(span);
  };
  EXPECT_EQ(component("gateway.queue"), "queue");
  EXPECT_EQ(component("nic.queue"), "queue");
  EXPECT_EQ(component("nic.reassemble"), "queue");
  EXPECT_EQ(component("gateway.proxy"), "proxy");
  EXPECT_EQ(component("rpc.call"), "transport");
  EXPECT_EQ(component("rpc.attempt"), "transport");
  EXPECT_EQ(component("rpc.attempt", /*timeout=*/true), "retransmit");
  EXPECT_EQ(component("nic.execute"), "execute");
  EXPECT_EQ(component("host.kernel"), "execute");
  EXPECT_EQ(component("something.else"), "other");
}

TEST(Trace, CriticalPathComponentsSumExactlyToTotal) {
  // request [0,1000] with gateway.queue [0,100], rpc.call [100,900]
  // containing nic.execute [300,600]. The deepest-span sweep should
  // yield queue=100, transport=500 (rpc minus the nested execute),
  // execute=300, other=100 (the uncovered [900,1000] tail).
  TraceRecorder recorder;
  const auto t = recorder.new_trace();
  const auto root = recorder.start_span(t, 0, "request", 0);
  const auto queue = recorder.start_span(t, root, "gateway.queue", 0);
  recorder.end_span(queue, 100);
  const auto rpc = recorder.start_span(t, root, "rpc.call", 100);
  const auto exec = recorder.start_span(t, rpc, "nic.execute", 300);
  recorder.end_span(exec, 600);
  recorder.end_span(rpc, 900);
  recorder.end_span(root, 1000);

  const auto path = recorder.critical_path(t);
  EXPECT_EQ(path.total, 1000);
  EXPECT_EQ(path.component("queue"), 100);
  EXPECT_EQ(path.component("transport"), 500);
  EXPECT_EQ(path.component("execute"), 300);
  EXPECT_EQ(path.component("other"), 100);

  SimDuration sum = 0;
  for (const auto& [name, d] : path.components) sum += d;
  EXPECT_EQ(sum, path.total);

  const std::string summary = recorder.critical_path_summary(t);
  EXPECT_NE(summary.find("execute"), std::string::npos);
  EXPECT_NE(summary.find("transport"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Histogram

TEST(Histogram, BucketPlacementAndCumulativeCounts) {
  Histogram h({10.0, 100.0, 1000.0});
  h.observe(5.0);     // <= 10
  h.observe(10.0);    // <= 10 (inclusive upper bound)
  h.observe(50.0);    // <= 100
  h.observe(999.0);   // <= 1000
  h.observe(5000.0);  // +Inf
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 6064.0);
  ASSERT_EQ(h.buckets().size(), 4u);
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[2], 1u);
  EXPECT_EQ(h.buckets()[3], 1u);  // +Inf
  EXPECT_EQ(h.cumulative(0), 2u);
  EXPECT_EQ(h.cumulative(1), 3u);
  EXPECT_EQ(h.cumulative(2), 4u);
}

TEST(Histogram, PercentileStaysWithinBucketBounds) {
  Histogram h({10.0, 100.0, 1000.0});
  for (int i = 0; i < 90; ++i) h.observe(50.0);
  for (int i = 0; i < 10; ++i) h.observe(500.0);
  const double p50 = h.percentile(50.0);
  EXPECT_GT(p50, 10.0);
  EXPECT_LE(p50, 100.0);
  const double p99 = h.percentile(99.0);
  EXPECT_GT(p99, 100.0);
  EXPECT_LE(p99, 1000.0);
  EXPECT_EQ(Histogram{}.percentile(50.0), 0.0);  // empty
}

// ---------------------------------------------------------------------------
// MetricsRegistry: labels, sorting, exposition validity

TEST(Metrics, CounterNamePassesThrough) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.counter("requests_total").name(), "requests_total");
  // The labeled overload stores (and names) the canonical series key.
  Counter& labeled = registry.counter("requests_total", {{"fn", "web"}});
  EXPECT_EQ(labeled.name(), "requests_total{fn=web}");
}

TEST(Metrics, LabeledAndBakedKeyAddressSameSeries) {
  MetricsRegistry registry;
  registry.counter("x_total", {{"b", "2"}, {"a", "1"}}).increment(3);
  // Canonical key sorts label keys; the baked-string form must hit the
  // same series.
  EXPECT_EQ(registry.counter("x_total{a=1,b=2}").value(), 3u);
  EXPECT_TRUE(registry.has("x_total{a=1,b=2}"));
}

TEST(Metrics, RenderIsNameSortedWithQuotedLabels) {
  MetricsRegistry registry;
  registry.gauge("zeta") = 1.0;
  registry.counter("alpha_total", {{"fn", "web"}}).increment(2);
  registry.sampler("mid_latency").add(5.0);
  const std::string text = registry.render();

  const auto alpha = text.find("alpha_total{fn=\"web\"} 2");
  const auto mid = text.find("mid_latency_count 1");
  const auto zeta = text.find("zeta 1");
  ASSERT_NE(alpha, std::string::npos);
  ASSERT_NE(mid, std::string::npos);
  ASSERT_NE(zeta, std::string::npos);
  // Globally name-sorted across metric kinds.
  EXPECT_LT(alpha, mid);
  EXPECT_LT(mid, zeta);
}

TEST(Metrics, HistogramRendersConsistentBucketSumCount) {
  MetricsRegistry registry;
  auto& h = registry.histogram("lat_ns", {{"fn", "web"}}, {10.0, 100.0});
  h.observe(5.0);
  h.observe(50.0);
  h.observe(500.0);
  const std::string text = registry.render();
  EXPECT_NE(text.find("lat_ns_bucket{fn=\"web\",le=\"10\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("lat_ns_bucket{fn=\"web\",le=\"100\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("lat_ns_bucket{fn=\"web\",le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("lat_ns_sum{fn=\"web\"} 555"), std::string::npos);
  EXPECT_NE(text.find("lat_ns_count{fn=\"web\"} 3"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Sampler percentile edge cases

TEST(Sampler, PercentileEdgeCases) {
  Sampler empty;
  EXPECT_DOUBLE_EQ(empty.percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.percentile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.percentile(100.0), 0.0);

  Sampler single;
  single.add(42.0);
  EXPECT_DOUBLE_EQ(single.percentile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(single.percentile(50.0), 42.0);
  EXPECT_DOUBLE_EQ(single.percentile(100.0), 42.0);

  Sampler pair;
  pair.add(1.0);
  pair.add(2.0);
  EXPECT_DOUBLE_EQ(pair.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(pair.percentile(100.0), 2.0);
}

// ---------------------------------------------------------------------------
// Monitor time series

TEST(Monitor, ScrapeTimeSeriesStopsWithTimer) {
  sim::Simulator sim;
  net::Network network(sim);
  auto backend = backends::make_backend(backends::BackendKind::kLambdaNic,
                                        sim, network);
  ASSERT_TRUE(backend->deploy(workloads::make_standard_workloads()).ok());
  framework::Monitor monitor(sim, milliseconds(100));
  monitor.watch_backend("w", backend.get());
  monitor.start();
  sim.run_until(seconds(1));
  const auto scrapes_at_stop = monitor.scrapes();
  EXPECT_GE(scrapes_at_stop, 9u);
  monitor.stop();
  sim.run_until(seconds(3));
  EXPECT_EQ(monitor.scrapes(), scrapes_at_stop);  // no scrapes after stop

  // Manual scrape still works and the gauges re-resolve (last value wins).
  monitor.scrape();
  EXPECT_EQ(monitor.scrapes(), scrapes_at_stop + 1);
  EXPECT_TRUE(monitor.metrics().has("backend_completed{node=w}"));
  EXPECT_NE(monitor.metrics().render().find("monitor_scrapes"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// NPU-grid profiler

TEST(NpuProfiler, BusyAttributionPerThreadCoreAndLambda) {
  nicsim::NpuProfiler profiler(/*threads=*/4, /*threads_per_core=*/2);
  EXPECT_EQ(profiler.cores(), 2u);

  profiler.on_dispatch(0, /*workload=*/7, 100);
  profiler.on_dispatch(1, /*workload=*/8, 100);
  profiler.on_release(0, 400);  // thread 0 busy 300
  profiler.on_release(1, 200);  // thread 1 busy 100

  EXPECT_EQ(profiler.thread_busy_ns(0, 1000), 300);
  EXPECT_EQ(profiler.thread_busy_ns(1, 1000), 100);
  EXPECT_EQ(profiler.core_busy_ns(0, 1000), 400);  // threads 0+1
  EXPECT_EQ(profiler.core_busy_ns(1, 1000), 0);
  EXPECT_EQ(profiler.lambda_busy_ns(7), 300);
  EXPECT_EQ(profiler.lambda_dispatches(7), 1u);
  EXPECT_EQ(profiler.lambda_busy_ns(8), 100);
  // 400 busy ns over 4 threads * 1000 ns.
  EXPECT_DOUBLE_EQ(profiler.grid_utilization(1000), 0.1);

  // An open interval counts up to `now`.
  profiler.on_dispatch(2, 7, 500);
  EXPECT_EQ(profiler.thread_busy_ns(2, 800), 300);

  const std::string report = profiler.text_report(1000);
  EXPECT_NE(report.find("core"), std::string::npos);
}

TEST(NpuProfiler, RingsBoundTimelineAndDepthSamples) {
  nicsim::NpuProfiler profiler(/*threads=*/1, /*threads_per_core=*/1,
                               /*max_samples=*/4);
  for (int i = 0; i < 10; ++i) {
    const SimTime at = i * 100;
    profiler.on_dispatch(0, 1, at);
    profiler.on_release(0, at + 50);
    profiler.on_queue_depth(at, static_cast<std::uint64_t>(i));
  }
  EXPECT_EQ(profiler.timeline(0).size(), 4u);
  EXPECT_EQ(profiler.timeline(0).back().end, 950);
  EXPECT_EQ(profiler.queue_depth_samples().size(), 4u);
  EXPECT_EQ(profiler.peak_queue_depth(), 9u);
  // Cumulative totals stay exact despite ring eviction.
  EXPECT_EQ(profiler.thread_busy_ns(0, 10000), 500);
  EXPECT_EQ(profiler.lambda_dispatches(1), 10u);
}

// ---------------------------------------------------------------------------
// Integration: traced request with a forced retransmission

TEST(Observability, TracedRetransmitYieldsConnectedSpanTree) {
  core::ClusterConfig config;
  config.workers = 1;
  config.gateway.rpc.retransmit_timeout = milliseconds(10);
  core::Cluster cluster(config);

  TraceRecorder recorder;
  cluster.gateway().set_tracer(&recorder);
  cluster.worker(0).set_tracer(&recorder);

  ASSERT_TRUE(cluster.deploy(workloads::make_standard_workloads()).ok());
  cluster.wait_until_ready();

  // Swallow the first attempt; the retransmit timer resends at +10 ms
  // into a healed fabric.
  cluster.network().set_faults(net::FaultConfig{.drop_probability = 1.0});
  cluster.sim().schedule(milliseconds(5), [&cluster] {
    cluster.network().set_faults(net::FaultConfig{});
  });

  const std::vector<std::uint8_t> rgba(64 * 64 * 4, 0x5A);
  auto response = cluster.invoke_and_wait(
      "image_transformer", workloads::encode_image_request(64, 64, rgba));
  ASSERT_TRUE(response.ok()) << response.error().message;
  EXPECT_GE(response.value().retries, 1u);

  const auto traces = recorder.trace_ids();
  ASSERT_EQ(traces.size(), 1u);
  const auto spans = recorder.trace_spans(traces.front());
  ASSERT_GE(spans.size(), 5u);

  // One connected tree: exactly one root, every parent resolves.
  std::set<trace::SpanId> ids;
  for (const auto& span : spans) ids.insert(span.id);
  std::size_t roots = 0;
  for (const auto& span : spans) {
    if (ids.count(span.parent) == 0) ++roots;
    EXPECT_FALSE(span.open) << span.name;
  }
  EXPECT_EQ(roots, 1u);

  std::set<std::string> kinds;
  for (const auto& span : spans) kinds.insert(span.name);
  EXPECT_GE(kinds.size(), 5u);
  EXPECT_TRUE(kinds.count("request"));
  EXPECT_TRUE(kinds.count("rpc.attempt"));
  EXPECT_TRUE(kinds.count("nic.reassemble"));
  EXPECT_TRUE(kinds.count("nic.execute"));

  // Critical-path components sum exactly to the end-to-end duration and
  // attribute the dead first attempt to "retransmit".
  const auto path = recorder.critical_path(traces.front());
  EXPECT_GT(path.component("retransmit"), 0);
  SimDuration sum = 0;
  for (const auto& [name, d] : path.components) sum += d;
  EXPECT_EQ(sum, path.total);
  // The root span covers the whole gateway round trip, so it can only
  // be as long as (or longer than) the rpc-layer latency.
  EXPECT_GE(path.total, response.value().latency);
}

}  // namespace
}  // namespace lnic
