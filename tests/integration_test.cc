// Cross-module integration scenarios beyond core_test: firmware built by
// the CLI-equivalent path served by a cluster, RDMA image traffic under
// loss, health-checked failover end to end, and tail-latency invariants
// across backends under identical load.
#include <gtest/gtest.h>

#include "backends/backend.h"
#include "compiler/pipeline.h"
#include "core/cluster.h"
#include "framework/health.h"
#include "microc/frontend.h"
#include "p4/text.h"
#include "proto/rpc.h"
#include "workloads/image.h"
#include "workloads/lambdas.h"

namespace lnic {
namespace {

TEST(Integration, SourceAuthoredBundleServedByCluster) {
  // The Listing 1-3 path, through the public Cluster API.
  auto program = microc::compile_microc(R"(
    int doubler() {
      resp_word(hdr(key) * 2);
      return 0;
    }
  )");
  ASSERT_TRUE(program.ok());
  auto spec = p4::parse_p4(R"(
    table t { key = { workload_id; } entry (6) -> doubler; }
    control ingress { apply(t); }
  )");
  ASSERT_TRUE(spec.ok());

  workloads::WorkloadBundle bundle;
  bundle.lambdas = std::move(program).value();
  bundle.spec = std::move(spec).value();

  core::ClusterConfig config;
  config.workers = 2;
  config.with_etcd = false;
  core::Cluster cluster(config);
  ASSERT_TRUE(cluster.deploy(std::move(bundle)).ok());
  cluster.wait_until_ready();
  auto r = cluster.invoke_and_wait("doubler",
                                   workloads::encode_kv_request(21));
  ASSERT_TRUE(r.ok()) << r.error().message;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(r.value().payload[i]) << (8 * i);
  }
  EXPECT_EQ(v, 42u);
}

TEST(Integration, HybridClusterServesEveryFunctionUnderNicFirst) {
  // The headline placement scenario: a mixed pool deploys the standard
  // bundle, NIC workers host everything (it fits), and every function
  // answers through the weighted routes.
  core::ClusterConfig config;
  config.worker_kinds = {
      backends::BackendKind::kLambdaNic, backends::BackendKind::kLambdaNic,
      backends::BackendKind::kBareMetal, backends::BackendKind::kContainer};
  core::Cluster cluster(config);
  auto record = cluster.deploy(workloads::make_standard_workloads());
  ASSERT_TRUE(record.ok()) << record.error().message;
  EXPECT_EQ(record.value().policy, "nic-first");
  EXPECT_EQ(record.value().placements.size(), 4u);
  cluster.wait_until_ready();

  auto web = cluster.invoke_and_wait("web_server",
                                     workloads::encode_web_request(1));
  ASSERT_TRUE(web.ok()) << web.error().message;
  ASSERT_TRUE(cluster.invoke_and_wait("kv_client_get",
                                      workloads::encode_kv_request(5))
                  .ok());
  ASSERT_TRUE(cluster.invoke_and_wait("kv_client_set",
                                      workloads::encode_kv_request(5, 9))
                  .ok());
  const auto img = workloads::make_test_image(64, 64, 3);
  ASSERT_TRUE(cluster
                  .invoke_and_wait("image_transformer",
                                   workloads::encode_image_request(
                                       img.width, img.height, img.rgba))
                  .ok());
}

TEST(Integration, OversizeLambdaSpillsToHostRestStayOnNic) {
  // Blow the web server past the 16 K instruction store: NicFirst must
  // place it on the host workers while the other three lambdas stay
  // NIC-resident — and both halves keep serving.
  workloads::Scale scale;
  scale.web_mix_rounds = 6000;
  core::ClusterConfig config;
  config.worker_kinds = {
      backends::BackendKind::kLambdaNic, backends::BackendKind::kLambdaNic,
      backends::BackendKind::kBareMetal, backends::BackendKind::kContainer};
  core::Cluster cluster(config);
  auto record = cluster.deploy(workloads::make_standard_workloads(scale));
  ASSERT_TRUE(record.ok()) << record.error().message;

  for (const auto& placement : record.value().placements) {
    ASSERT_FALSE(placement.replicas.empty()) << placement.function;
    for (const auto& replica : placement.replicas) {
      if (placement.function == "web_server") {
        EXPECT_NE(replica.kind, backends::BackendKind::kLambdaNic);
      } else {
        EXPECT_EQ(replica.kind, backends::BackendKind::kLambdaNic)
            << placement.function;
      }
    }
  }

  cluster.wait_until_ready();
  auto web = cluster.invoke_and_wait("web_server",
                                     workloads::encode_web_request(2));
  ASSERT_TRUE(web.ok()) << web.error().message;
  ASSERT_TRUE(cluster.invoke_and_wait("kv_client_get",
                                      workloads::encode_kv_request(7))
                  .ok());
}

TEST(Integration, HomogeneousPlacementMatchesLegacyRoutes) {
  // A homogeneous cluster routed through the placement layer must look
  // exactly like the pre-placement cluster: every function on every
  // worker, weight 1, plain round robin.
  core::ClusterConfig config;
  config.workers = 3;
  core::Cluster cluster(config);
  ASSERT_TRUE(cluster.deploy(workloads::make_standard_workloads()).ok());
  cluster.wait_until_ready();
  const auto* route = cluster.gateway().route("web_server");
  ASSERT_NE(route, nullptr);
  ASSERT_EQ(route->replicas.size(), 3u);
  EXPECT_EQ(route->total_weight(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(route->workers[i], cluster.worker(i).node());
    EXPECT_EQ(route->replicas[i].weight, 1u);
  }
}

TEST(Integration, ImageOverLossyFabricStillExact) {
  // 5% loss on a 100+-fragment RDMA transfer: retransmission +
  // reassembly must still deliver a byte-exact grayscale result.
  core::ClusterConfig config;
  config.workers = 1;
  config.with_etcd = false;
  config.faults.drop_probability = 0.05;
  config.gateway.rpc.retransmit_timeout = milliseconds(30);
  config.gateway.rpc.max_retries = 100;
  core::Cluster cluster(config);
  ASSERT_TRUE(cluster.deploy(workloads::make_standard_workloads()).ok());
  cluster.wait_until_ready();
  const auto img = workloads::make_test_image(200, 200, 11);
  auto r = cluster.invoke_and_wait(
      "image_transformer",
      workloads::encode_image_request(img.width, img.height, img.rgba));
  ASSERT_TRUE(r.ok()) << r.error().message;
  EXPECT_EQ(r.value().payload, workloads::to_grayscale(img));
  EXPECT_GT(cluster.gateway().rpc().retransmissions(), 0u);
}

TEST(Integration, HealthCheckerPlusGatewayKeepServingThroughCrash) {
  sim::Simulator sim;
  net::Network network(sim);
  auto alive = backends::make_backend(backends::BackendKind::kLambdaNic, sim,
                                      network);
  auto doomed = backends::make_backend(backends::BackendKind::kLambdaNic, sim,
                                       network);
  kvstore::CacheServer cache(sim, network);
  alive->set_kv_server(cache.node());
  doomed->set_kv_server(cache.node());
  ASSERT_TRUE(alive->deploy(workloads::make_standard_workloads()).ok());
  ASSERT_TRUE(doomed->deploy(workloads::make_standard_workloads()).ok());
  sim.run_until(seconds(20));

  framework::GatewayConfig gw_config;
  gw_config.failover_attempts = 1;
  gw_config.rpc.retransmit_timeout = milliseconds(20);
  gw_config.rpc.max_retries = 2;
  framework::Gateway gateway(sim, network, gw_config);
  gateway.register_function("web_server", workloads::kWebServerId,
                            {alive->node(), doomed->node()});

  framework::HealthConfig hc;
  hc.probe_interval = milliseconds(100);
  hc.probe_timeout = milliseconds(30);
  hc.max_failures = 2;
  framework::HealthChecker checker(sim, network, gateway, hc);
  checker.watch(alive->node(), workloads::encode_web_request(0));
  checker.watch(doomed->node(), workloads::encode_web_request(0));
  checker.start();

  // Crash the doomed worker by detaching its handler.
  sim.schedule(milliseconds(300), [&] {
    network.set_handler(doomed->node(), nullptr);
  });

  // Steady trickle of traffic throughout; everything must complete.
  int ok = 0, failed = 0;
  sim::PeriodicTimer load(sim, milliseconds(20), [&] {
    gateway.invoke("web_server", workloads::encode_web_request(0),
                   [&](Result<proto::RpcResponse> r) {
                     if (r.ok()) {
                       ++ok;
                     } else {
                       ++failed;
                     }
                   });
  });
  load.start();
  sim.run_until(sim.now() + seconds(2));
  load.stop();
  checker.stop();
  sim.run();

  EXPECT_EQ(failed, 0);
  EXPECT_GE(ok, 95);
  EXPECT_FALSE(checker.is_healthy(doomed->node()));
  // The crashed worker stays in the route (quarantined until a probe
  // succeeds) so a later recovery needs no manager intervention.
  EXPECT_EQ(gateway.route("web_server")->workers,
            (std::vector<NodeId>{alive->node(), doomed->node()}));
  EXPECT_EQ(checker.quarantines(), 1u);
}

// Property sweep: for every backend pair under identical load, λ-NIC's
// p99 stays below the host backends' p50 (the paper's headline ordering
// holds even comparing λ-NIC's tail to the hosts' median).
class TailOrderingTest : public ::testing::TestWithParam<int> {};

TEST_P(TailOrderingTest, NicTailBeatsHostMedian) {
  const int concurrency = GetParam();
  Sampler lat[3];
  const backends::BackendKind kinds[] = {backends::BackendKind::kLambdaNic,
                                         backends::BackendKind::kBareMetal,
                                         backends::BackendKind::kContainer};
  for (int k = 0; k < 3; ++k) {
    sim::Simulator sim;
    net::Network network(sim);
    auto backend = backends::make_backend(kinds[k], sim, network);
    kvstore::CacheServer cache(sim, network);
    backend->set_kv_server(cache.node());
    ASSERT_TRUE(backend->deploy(workloads::make_standard_workloads()).ok());
    sim.run_until(seconds(20));
    proto::RpcConfig rpc;
    rpc.retransmit_timeout = seconds(600);
    proto::RpcClient client(sim, network, rpc);
    std::uint64_t left = 300;
    std::function<void()> issue = [&]() {
      if (left == 0) return;
      --left;
      client.call(backend->node(), workloads::kWebServerId,
                  workloads::encode_web_request(left & 3),
                  [&, k](Result<proto::RpcResponse> r) {
                    if (r.ok()) {
                      lat[k].add(static_cast<double>(r.value().latency));
                    }
                    issue();
                  });
    };
    for (int c = 0; c < concurrency; ++c) issue();
    sim.run();
  }
  EXPECT_LT(lat[0].p99(), lat[1].median()) << "vs bare metal";
  EXPECT_LT(lat[0].p99(), lat[2].median()) << "vs container";
  EXPECT_LT(lat[1].median(), lat[2].median());
}

INSTANTIATE_TEST_SUITE_P(Concurrency, TailOrderingTest,
                         ::testing::Values(1, 8, 56));

}  // namespace
}  // namespace lnic
