// Tests for firmware serialization and the IR disassembler: byte-exact
// round trips of real compiled programs, corruption rejection, and
// disassembly sanity.
#include <gtest/gtest.h>

#include "compiler/pipeline.h"
#include "microc/disasm.h"
#include "microc/interp.h"
#include "microc/serialize.h"
#include "microc/verify.h"
#include "workloads/lambdas.h"

namespace lnic::microc {
namespace {

Program standard_firmware() {
  auto bundle = workloads::make_standard_workloads();
  auto compiled = compiler::compile(bundle.spec, std::move(bundle.lambdas));
  EXPECT_TRUE(compiled.ok());
  return std::move(compiled).value().program;
}

bool programs_equal(const Program& a, const Program& b) {
  if (a.name != b.name) return false;
  if (a.objects.size() != b.objects.size()) return false;
  for (std::size_t i = 0; i < a.objects.size(); ++i) {
    const auto& x = a.objects[i];
    const auto& y = b.objects[i];
    if (x.name != y.name || x.size != y.size || x.scope != y.scope ||
        x.access != y.access || x.hint != y.hint || x.region != y.region ||
        x.initial_data != y.initial_data) {
      return false;
    }
  }
  if (a.functions.size() != b.functions.size()) return false;
  for (std::size_t i = 0; i < a.functions.size(); ++i) {
    const auto& x = a.functions[i];
    const auto& y = b.functions[i];
    if (x.name != y.name || x.num_regs != y.num_regs ||
        x.num_args != y.num_args || x.blocks.size() != y.blocks.size()) {
      return false;
    }
    for (std::size_t bidx = 0; bidx < x.blocks.size(); ++bidx) {
      if (x.blocks[bidx].instrs != y.blocks[bidx].instrs) return false;
    }
  }
  return a.parsed_fields == b.parsed_fields &&
         a.dispatch_function == b.dispatch_function &&
         a.lambda_entries == b.lambda_entries;
}

TEST(Serialize, RoundTripsTheStandardFirmware) {
  const Program original = standard_firmware();
  const auto bytes = serialize(original);
  EXPECT_GT(bytes.size(), 1000u);
  auto restored = deserialize(bytes);
  ASSERT_TRUE(restored.ok()) << restored.error().message;
  EXPECT_TRUE(programs_equal(original, restored.value()));
  EXPECT_TRUE(verify(restored.value()).ok());
}

TEST(Serialize, RestoredFirmwareExecutesIdentically) {
  const Program original = standard_firmware();
  auto restored = deserialize(serialize(original));
  ASSERT_TRUE(restored.ok());

  Invocation inv;
  inv.headers.fields[kHdrWorkloadId] = workloads::kWebServerId;
  inv.headers.fields[kHdrOp] = 2;
  inv.match_data = {1};

  ObjectStore s1(original), s2(restored.value());
  Machine m1(original, CostModel::npu(), &s1);
  Machine m2(restored.value(), CostModel::npu(), &s2);
  const auto o1 = m1.run(inv);
  const auto o2 = m2.run(inv);
  ASSERT_EQ(o1.state, RunState::kDone);
  ASSERT_EQ(o2.state, RunState::kDone);
  EXPECT_EQ(o1.response, o2.response);
  EXPECT_EQ(o1.cycles, o2.cycles);
}

TEST(Serialize, SerializationIsDeterministic) {
  const Program p = standard_firmware();
  EXPECT_EQ(serialize(p), serialize(p));
}

TEST(Serialize, RejectsBadMagic) {
  auto bytes = serialize(standard_firmware());
  bytes[0] ^= 0xFF;
  auto r = deserialize(bytes);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("magic"), std::string::npos);
}

TEST(Serialize, RejectsBadVersion) {
  auto bytes = serialize(standard_firmware());
  bytes[4] = 99;
  EXPECT_FALSE(deserialize(bytes).ok());
}

TEST(Serialize, RejectsTruncation) {
  const auto bytes = serialize(standard_firmware());
  for (const std::size_t cut : {bytes.size() / 4, bytes.size() / 2,
                                bytes.size() - 1}) {
    std::vector<std::uint8_t> truncated(bytes.begin(),
                                        bytes.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(deserialize(truncated).ok()) << "cut=" << cut;
  }
}

TEST(Serialize, RejectsTrailingGarbage) {
  auto bytes = serialize(standard_firmware());
  bytes.push_back(0);
  auto r = deserialize(bytes);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("trailing"), std::string::npos);
}

TEST(Serialize, EmptyProgramRoundTrips) {
  Program empty;
  empty.name = "empty";
  auto r = deserialize(serialize(empty));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().name, "empty");
  EXPECT_TRUE(r.value().functions.empty());
}

// ----------------------------------------------------------- disassembler

TEST(Disasm, ListsObjectsParserAndFunctions) {
  const Program p = standard_firmware();
  const std::string text = disassemble(p);
  EXPECT_NE(text.find("web_content"), std::string::npos);
  EXPECT_NE(text.find("image_buf"), std::string::npos);
  EXPECT_NE(text.find("func web_server"), std::string::npos);
  EXPECT_NE(text.find("__match_dispatch"), std::string::npos);
  EXPECT_NE(text.find("parser:"), std::string::npos);
  EXPECT_NE(text.find("words"), std::string::npos);
}

TEST(Disasm, InstructionFormats) {
  Program p;
  MemObject obj;
  obj.name = "buf";
  obj.size = 64;
  p.objects.push_back(obj);
  EXPECT_EQ(disassemble(Instr{.op = Opcode::kConst, .dst = 3, .imm = 42}, p),
            "const r3, 42");
  EXPECT_EQ(disassemble(Instr{.op = Opcode::kAdd, .dst = 2, .a = 0, .b = 1}, p),
            "add r2, r0, r1");
  EXPECT_EQ(disassemble(Instr{.op = Opcode::kLoad, .dst = 5, .a = 2,
                              .imm = 8, .obj = 0, .width = 4},
                        p),
            "load.4 r5, buf[r2+8]");
  EXPECT_EQ(disassemble(Instr{.op = Opcode::kBrIf, .a = 1, .b = 3, .imm = 2},
                        p),
            "brif r1, .b2, .b3");
  EXPECT_EQ(disassemble(Instr{.op = Opcode::kLoadHdr, .dst = 1,
                              .imm = kHdrKey},
                        p),
            "ldhdr r1, hdr.key");
}

TEST(Disasm, EveryOpcodeHasAForm) {
  // Smoke: disassembling any instruction never yields an empty string.
  Program p;
  MemObject obj;
  obj.name = "o";
  obj.size = 8;
  p.objects.push_back(obj);
  Function f;
  f.name = "g";
  p.functions.push_back(f);
  for (int op = 0; op <= static_cast<int>(Opcode::kRet); ++op) {
    Instr in;
    in.op = static_cast<Opcode>(op);
    in.imm = 0;
    EXPECT_FALSE(disassemble(in, p).empty()) << op;
  }
}

}  // namespace
}  // namespace lnic::microc
