// Tests for the cache server (LRU, GET/SET over the fabric) and the
// etcd-like replicated store (puts, lists, watches, leader failover).
#include <gtest/gtest.h>

#include "kvstore/cache_server.h"
#include "kvstore/etcd.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace lnic::kvstore {
namespace {

using net::Packet;
using net::PacketKind;

Packet kv_request(NodeId src, NodeId dst, bool is_set, std::uint64_t key,
                  std::uint64_t value, RequestId token) {
  Packet p;
  p.src = src;
  p.dst = dst;
  p.kind = PacketKind::kKvRequest;
  p.lambda.workload_id = is_set ? 1 : 0;
  p.lambda.request_id = token;
  std::vector<std::uint8_t> body(16);
  for (int i = 0; i < 8; ++i) {
    body[i] = static_cast<std::uint8_t>(key >> (8 * i));
    body[8 + i] = static_cast<std::uint8_t>(value >> (8 * i));
  }
  p.payload = std::move(body);
  return p;
}

std::uint64_t reply_value(const Packet& p) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8 && i < p.payload.size(); ++i) {
    v |= static_cast<std::uint64_t>(p.payload[i]) << (8 * i);
  }
  return v;
}

TEST(CacheServer, DirectPutGet) {
  sim::Simulator sim;
  net::Network network(sim);
  CacheServer cache(sim, network);
  cache.put(1, 100);
  cache.put(2, 200);
  std::uint64_t v = 0;
  EXPECT_TRUE(cache.get(1, v));
  EXPECT_EQ(v, 100u);
  EXPECT_TRUE(cache.get(2, v));
  EXPECT_EQ(v, 200u);
  EXPECT_FALSE(cache.get(3, v));
}

TEST(CacheServer, LruEvictsOldest) {
  sim::Simulator sim;
  net::Network network(sim);
  CacheConfig config;
  config.capacity = 3;
  CacheServer cache(sim, network, config);
  cache.put(1, 10);
  cache.put(2, 20);
  cache.put(3, 30);
  std::uint64_t v;
  EXPECT_TRUE(cache.get(1, v));  // touch 1: now 2 is LRU
  cache.put(4, 40);              // evicts 2
  EXPECT_FALSE(cache.get(2, v));
  EXPECT_TRUE(cache.get(1, v));
  EXPECT_TRUE(cache.get(4, v));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(CacheServer, DirectAccessorsCountStatsLikeNetworkedPath) {
  sim::Simulator sim;
  net::Network network(sim);
  CacheServer cache(sim, network);
  cache.put(1, 100);
  std::uint64_t v = 0;
  EXPECT_TRUE(cache.get(1, v));
  EXPECT_FALSE(cache.get(2, v));
  // The direct path maintains CacheStats exactly like the fabric path.
  EXPECT_EQ(cache.stats().sets, 1u);
  EXPECT_EQ(cache.stats().gets, 2u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(CacheServer, NetworkedSetThenGet) {
  sim::Simulator sim;
  net::Network network(sim);
  CacheServer cache(sim, network);
  std::vector<Packet> replies;
  const NodeId client =
      network.attach([&](const Packet& p) { replies.push_back(p); });
  network.send(kv_request(client, cache.node(), true, 7, 777, 1));
  sim.run();
  network.send(kv_request(client, cache.node(), false, 7, 0, 2));
  sim.run();
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_EQ(replies[0].kind, PacketKind::kKvResponse);
  EXPECT_EQ(reply_value(replies[1]), 777u);
  EXPECT_EQ(cache.stats().sets, 1u);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(CacheServer, MissReturnsZero) {
  sim::Simulator sim;
  net::Network network(sim);
  CacheServer cache(sim, network);
  std::vector<Packet> replies;
  const NodeId client =
      network.attach([&](const Packet& p) { replies.push_back(p); });
  network.send(kv_request(client, cache.node(), false, 404, 0, 9));
  sim.run();
  ASSERT_EQ(replies.size(), 1u);
  EXPECT_EQ(reply_value(replies[0]), 0u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(CacheServer, ServiceTimeOrdersReplies) {
  sim::Simulator sim;
  net::Network network(sim);
  CacheServer cache(sim, network);
  std::vector<SimTime> times;
  const NodeId client =
      network.attach([&](const Packet&) { times.push_back(sim.now()); });
  network.send(kv_request(client, cache.node(), false, 1, 0, 1));
  sim.run();
  // GET service (4 us) + two fabric traversals ≈ > 6 us.
  ASSERT_EQ(times.size(), 1u);
  EXPECT_GT(times[0], microseconds(6));
}

TEST(Etcd, PutGetAfterElection) {
  sim::Simulator sim;
  EtcdStore store(sim, 3);
  store.start();
  sim.run_until(seconds(2));
  ASSERT_TRUE(store.put("lambda/1/node", "worker-2").ok());
  sim.run_until(seconds(3));
  const auto v = store.get("lambda/1/node");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "worker-2");
}

TEST(Etcd, PutFailsBeforeElection) {
  sim::Simulator sim;
  EtcdStore store(sim, 3);
  store.start();
  EXPECT_FALSE(store.put("k", "v").ok());  // no leader yet
}

TEST(Etcd, ListByPrefix) {
  sim::Simulator sim;
  EtcdStore store(sim, 3);
  store.start();
  sim.run_until(seconds(2));
  ASSERT_TRUE(store.put("lambda/1", "a").ok());
  ASSERT_TRUE(store.put("lambda/2", "b").ok());
  ASSERT_TRUE(store.put("node/1", "c").ok());
  sim.run_until(seconds(3));
  const auto entries = store.list("lambda/");
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].first, "lambda/1");
  EXPECT_EQ(entries[1].first, "lambda/2");
}

TEST(Etcd, DeleteRemovesKey) {
  sim::Simulator sim;
  EtcdStore store(sim, 3);
  store.start();
  sim.run_until(seconds(2));
  ASSERT_TRUE(store.put("k", "v").ok());
  sim.run_until(seconds(3));
  ASSERT_TRUE(store.remove("k").ok());
  sim.run_until(seconds(4));
  EXPECT_FALSE(store.get("k").has_value());
}

TEST(Etcd, WatchFiresOnPrefix) {
  sim::Simulator sim;
  EtcdStore store(sim, 3);
  std::vector<std::string> seen;
  store.watch("lambda/", [&](const std::string& k, const std::string&) {
    seen.push_back(k);
  });
  store.start();
  sim.run_until(seconds(2));
  ASSERT_TRUE(store.put("lambda/9", "x").ok());
  ASSERT_TRUE(store.put("other/1", "y").ok());
  sim.run_until(seconds(3));
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], "lambda/9");
}

TEST(Etcd, SurvivesLeaderFailover) {
  sim::Simulator sim;
  EtcdStore store(sim, 5);
  store.start();
  sim.run_until(seconds(2));
  ASSERT_TRUE(store.put("persistent", "value").ok());
  sim.run_until(seconds(3));
  raft::RaftNode* leader = store.cluster().leader();
  ASSERT_NE(leader, nullptr);
  leader->stop();
  sim.run_until(seconds(6));
  ASSERT_TRUE(store.put("after", "failover").ok());
  sim.run_until(seconds(8));
  EXPECT_EQ(store.get("persistent").value_or(""), "value");
  EXPECT_EQ(store.get("after").value_or(""), "failover");
}

}  // namespace
}  // namespace lnic::kvstore
