// Tests for the additional compiler passes (constant folding, inlining,
// pruning, isolation checking) plus a randomized differential suite:
// random straight-line programs must behave identically before and after
// every optimization combination.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "compiler/const_fold.h"
#include "compiler/dce.h"
#include "compiler/inline.h"
#include "compiler/isolation.h"
#include "compiler/pipeline.h"
#include "microc/builder.h"
#include "microc/frontend.h"
#include "microc/interp.h"
#include "microc/verify.h"
#include "workloads/lambdas.h"

namespace lnic::compiler {
namespace {

using microc::Invocation;
using microc::Machine;
using microc::ObjectStore;
using microc::Opcode;
using microc::Outcome;
using microc::Program;
using microc::ProgramBuilder;
using microc::RunState;

Outcome run_fn(const Program& p, std::size_t fn) {
  ObjectStore store(p);
  Machine m(p, microc::CostModel::npu(), &store);
  Invocation inv;
  return m.run_function(fn, inv);
}

// --------------------------------------------------------- const folding

TEST(ConstFold, FoldsArithmeticChains) {
  auto program = microc::compile_microc(
      "int f() { return (2 + 3) * 4 - 6 / 2; }");
  ASSERT_TRUE(program.ok());
  Program p = std::move(program).value();
  const auto before = run_fn(p, 0);
  const std::size_t folded = fold_constants(p);
  EXPECT_GT(folded, 0u);
  eliminate_dead_code(p);
  ASSERT_TRUE(microc::verify(p).ok());
  const auto after = run_fn(p, 0);
  EXPECT_EQ(after.return_value, before.return_value);
  EXPECT_EQ(after.return_value, 17u);
  // The function should now be a handful of instructions.
  EXPECT_LE(p.functions[0].instr_count(), 3u);
}

TEST(ConstFold, NeverFoldsDivisionByZero) {
  auto program = microc::compile_microc("int f() { return 1 / 0; }");
  ASSERT_TRUE(program.ok());
  Program p = std::move(program).value();
  fold_constants(p);
  const auto out = run_fn(p, 0);
  EXPECT_EQ(out.state, RunState::kTrap);  // runtime trap preserved
}

TEST(ConstFold, StopsAtUnknownValues) {
  auto program = microc::compile_microc(
      "int f() { return hdr(key) + (2 * 8); }");
  ASSERT_TRUE(program.ok());
  Program p = std::move(program).value();
  const auto folded = fold_constants(p);
  EXPECT_GE(folded, 1u);  // 2*8 folds; hdr()+16 does not
  Invocation inv;
  inv.headers.fields[microc::kHdrKey] = 5;
  ObjectStore store(p);
  Machine m(p, microc::CostModel::npu(), &store);
  EXPECT_EQ(m.run_function(0, inv).return_value, 21u);
}

TEST(ConstFold, FoldsFixedPointMultiply) {
  ProgramBuilder pb("t");
  auto fb = pb.function("f", 0);
  auto a = fb.const_u64(3 << 16);  // 3.0 in Q16.16
  auto b = fb.const_u64(1 << 15);  // 0.5
  fb.ret(fb.fxmul(a, b));
  fb.finish();
  Program p = pb.take();
  EXPECT_GT(fold_constants(p), 0u);
  EXPECT_EQ(run_fn(p, 0).return_value, static_cast<std::uint64_t>(3) << 15);
}

// --------------------------------------------------------------- inlining

TEST(Inline, InlinesSmallLeafAndPreservesBehaviour) {
  auto program = microc::compile_microc(R"(
    int tiny(x) { return x * 3 + 1; }
    int f() { return tiny(4) + tiny(10); }
  )");
  ASSERT_TRUE(program.ok());
  Program p = std::move(program).value();
  const auto f_index = p.function_index("f");
  const auto before = run_fn(p, f_index);
  const auto inlined = inline_functions(p);
  EXPECT_EQ(inlined, 2u);
  ASSERT_TRUE(microc::verify(p).ok());
  const auto after = run_fn(p, f_index);
  EXPECT_EQ(before.return_value, after.return_value);
  EXPECT_EQ(after.return_value, 44u);
  // No calls remain in f.
  for (const auto& block : p.functions[f_index].blocks) {
    for (const auto& in : block.instrs) {
      EXPECT_NE(in.op, Opcode::kCall);
    }
  }
}

TEST(Inline, SkipsBranchyOrBigCallees) {
  auto program = microc::compile_microc(R"(
    int branchy(x) { if (x > 2) { return 1; } else { return 0; } }
    int f() { return branchy(5); }
  )");
  ASSERT_TRUE(program.ok());
  Program p = std::move(program).value();
  EXPECT_EQ(inline_functions(p), 0u);  // multi-block callee stays a call
}

TEST(Inline, SkipsExtCallCallees) {
  auto program = microc::compile_microc(R"(
    int fetch(k) { return kv_get(k); }
    int f() { return fetch(1); }
  )");
  ASSERT_TRUE(program.ok());
  Program p = std::move(program).value();
  EXPECT_EQ(inline_functions(p), 0u);
}

TEST(Inline, InliningReducesDynamicCycles) {
  auto make = [] {
    auto program = microc::compile_microc(R"(
      int tiny(x) { return x + 1; }
      int f() {
        var acc = 0;
        var i = 0;
        while (i < 50) { acc = acc + tiny(i); i = i + 1; }
        return acc;
      }
    )");
    return std::move(program).value();
  };
  Program plain = make();
  Program inlined = make();
  inline_functions(inlined);
  const auto f = plain.function_index("f");
  const auto before = run_fn(plain, f);
  const auto after = run_fn(inlined, inlined.function_index("f"));
  EXPECT_EQ(before.return_value, after.return_value);
  EXPECT_LT(after.cycles, before.cycles);  // call linkage cycles saved
}

TEST(Inline, PruneRemovesFullyInlinedHelpers) {
  auto program = microc::compile_microc(R"(
    int tiny(x) { return x + 1; }
    int f() { return tiny(1); }
  )");
  ASSERT_TRUE(program.ok());
  Program p = std::move(program).value();
  p.lambda_entries = {{1, static_cast<std::uint32_t>(p.function_index("f"))}};
  p.dispatch_function = static_cast<std::uint32_t>(p.function_index("f"));
  inline_functions(p);
  EXPECT_EQ(prune_unreachable_functions(p), 1u);
  EXPECT_EQ(p.function_index("tiny"), Program::kNoFunction);
  ASSERT_TRUE(microc::verify(p).ok());
  EXPECT_EQ(run_fn(p, p.dispatch_function).return_value, 2u);
}

TEST(Inline, PruneKeepsTransitivelyReachable) {
  auto program = microc::compile_microc(R"(
    int a() { return b(); }
    int b() { return c(); }
    int c() { if (1 == 1) { return 7; } else { return 8; } }
    int dead() { return 0; }
  )");
  ASSERT_TRUE(program.ok());
  Program p = std::move(program).value();
  p.lambda_entries = {{1, static_cast<std::uint32_t>(p.function_index("a"))}};
  p.dispatch_function = static_cast<std::uint32_t>(p.function_index("a"));
  EXPECT_EQ(prune_unreachable_functions(p), 1u);
  EXPECT_NE(p.function_index("c"), Program::kNoFunction);
  EXPECT_EQ(p.function_index("dead"), Program::kNoFunction);
  EXPECT_EQ(run_fn(p, p.dispatch_function).return_value, 7u);
}

// -------------------------------------------------------------- isolation

TEST(Isolation, AcceptsInBoundsConstantAccesses) {
  auto program = microc::compile_microc(R"(
    global u8 buf[16];
    int f() { store8(buf, 8, 1); return load8(buf, 0); }
  )");
  ASSERT_TRUE(program.ok());
  auto report = check_isolation(program.value());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().accesses_proven, 2u);
  EXPECT_EQ(report.value().violations, 0u);
}

TEST(Isolation, RejectsProvableOutOfBounds) {
  auto program = microc::compile_microc(R"(
    global u8 buf[16];
    int f() { return load8(buf, 12); }   // 12 + 8 > 16
  )");
  ASSERT_TRUE(program.ok());
  auto report = check_isolation(program.value());
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.error().message.find("buf"), std::string::npos);
}

TEST(Isolation, DynamicOffsetsLeftToRuntime) {
  auto program = microc::compile_microc(R"(
    global u8 buf[16];
    int f() { return load8(buf, hdr(key)); }
  )");
  ASSERT_TRUE(program.ok());
  auto report = check_isolation(program.value());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().accesses_proven, 0u);  // not provable
}

TEST(Isolation, PipelineRejectsViolatingLambda) {
  auto program = microc::compile_microc(R"(
    global u8 tiny[4];
    int bad() { return load8(tiny, 0); }   // width 8 > size 4
  )");
  ASSERT_TRUE(program.ok());
  p4::MatchSpec spec;
  spec.tables.push_back(p4::make_lambda_table("bad", 1));
  auto compiled = compile(spec, std::move(program).value());
  ASSERT_FALSE(compiled.ok());
  EXPECT_NE(compiled.error().message.find("isolation"), std::string::npos);
}

TEST(Isolation, StandardWorkloadsPassTheCheck) {
  auto bundle = workloads::make_standard_workloads();
  compiler::Options options;  // isolation check on by default
  auto compiled = compile(bundle.spec, std::move(bundle.lambdas), options);
  EXPECT_TRUE(compiled.ok());
}

// ------------------------------------------- randomized differential test

// Generates a random straight-line arithmetic function; checks that all
// optimization combinations preserve its observable behaviour exactly.
Program random_program(Rng& rng, int length) {
  ProgramBuilder pb("rand");
  auto fb = pb.function("f", 0);
  std::vector<microc::Reg> values;
  values.push_back(fb.const_u64(rng.next_u64() % 1000 + 1));
  values.push_back(fb.const_u64(rng.next_u64() % 1000 + 1));
  for (int i = 0; i < length; ++i) {
    const auto a = values[rng.next_below(values.size())];
    const auto b = values[rng.next_below(values.size())];
    switch (rng.next_below(9)) {
      case 0: values.push_back(fb.add(a, b)); break;
      case 1: values.push_back(fb.sub(a, b)); break;
      case 2: values.push_back(fb.mul(a, b)); break;
      case 3: values.push_back(fb.and_(a, b)); break;
      case 4: values.push_back(fb.or_(a, b)); break;
      case 5: values.push_back(fb.xor_(a, b)); break;
      case 6: values.push_back(fb.add_imm(a, static_cast<std::int64_t>(
                                                  rng.next_below(100)))); break;
      case 7: values.push_back(fb.shl(a, fb.const_u64(rng.next_below(8)))); break;
      default: values.push_back(fb.cmp_ltu(a, b)); break;
    }
  }
  fb.resp_word(values.back());
  fb.ret(values.back());
  fb.finish();
  return pb.take();
}

class RandomDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomDifferentialTest, OptimizationsPreserveSemantics) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 13);
  Program original = random_program(rng, 40);
  ASSERT_TRUE(microc::verify(original).ok());
  const auto expected = run_fn(original, 0);
  ASSERT_EQ(expected.state, RunState::kDone);

  for (int mask = 1; mask < 8; ++mask) {
    Program p = original;
    if (mask & 1) fold_constants(p);
    if (mask & 2) eliminate_dead_code(p);
    if (mask & 4) {
      fold_constants(p);
      eliminate_dead_code(p);
    }
    ASSERT_TRUE(microc::verify(p).ok()) << "mask=" << mask;
    const auto out = run_fn(p, 0);
    ASSERT_EQ(out.state, RunState::kDone);
    EXPECT_EQ(out.return_value, expected.return_value) << "mask=" << mask;
    EXPECT_EQ(out.response, expected.response) << "mask=" << mask;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDifferentialTest,
                         ::testing::Range(1, 25));

}  // namespace
}  // namespace lnic::compiler
