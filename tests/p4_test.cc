// Tests for the mini-P4 model and its lowering: both modes must decide
// identically (table semantics preserved by if-else conversion), the
// naïve program must be strictly larger, and parser inference must track
// actual header usage.
#include <gtest/gtest.h>

#include "microc/builder.h"
#include "microc/interp.h"
#include "microc/verify.h"
#include "p4/lower.h"
#include "p4/p4.h"

namespace lnic::p4 {
namespace {

using microc::HeaderField;
using microc::Invocation;
using microc::Machine;
using microc::ObjectStore;
using microc::Outcome;
using microc::Program;
using microc::ProgramBuilder;
using microc::RunState;

// Two trivial lambdas returning distinct codes; lambda B reads kHdrKey.
Program make_lambdas() {
  ProgramBuilder pb("test");
  {
    auto fb = pb.function("lambda_a", 0);
    fb.ret_imm(101);
    fb.finish();
  }
  {
    auto fb = pb.function("lambda_b", 0);
    auto k = fb.load_hdr(microc::kHdrKey);
    auto r = fb.add_imm(k, 200);
    fb.ret(r);
    fb.finish();
  }
  return pb.take();
}

MatchSpec make_spec() {
  MatchSpec spec;
  spec.tables.push_back(make_lambda_table("lambda_a", 7));
  spec.tables.push_back(make_lambda_table("lambda_b", 9));
  spec.tables.push_back(make_route_table("lambda_a", 7));
  spec.tables.push_back(make_route_table("lambda_b", 9));
  return spec;
}

Outcome dispatch(const Program& program, WorkloadId wid,
                 std::uint64_t key = 0, std::uint64_t src = 0) {
  ObjectStore store(program);
  Machine machine(program, microc::CostModel::npu(), &store);
  Invocation inv;
  inv.headers.fields[microc::kHdrWorkloadId] = wid;
  inv.headers.fields[microc::kHdrKey] = key;
  inv.headers.fields[microc::kHdrSrcNode] = src;
  inv.match_data = {1};
  return machine.run(inv);
}

TEST(MatchSpec, ReferencedFieldsDeduplicated) {
  const MatchSpec spec = make_spec();
  const auto fields = spec.referenced_fields();
  EXPECT_EQ(fields.size(), 2u);  // workload id + src node
  EXPECT_EQ(spec.total_entries(), 2u + 8u);
}

class LoweringModeTest : public ::testing::TestWithParam<LoweringMode> {};

TEST_P(LoweringModeTest, DispatchSelectsMatchingLambda) {
  Program program = make_lambdas();
  ASSERT_TRUE(lower_match_stage(make_spec(), program, GetParam()).ok());
  ASSERT_TRUE(microc::verify(program).ok());

  auto a = dispatch(program, 7);
  ASSERT_EQ(a.state, RunState::kDone);
  EXPECT_EQ(a.return_value, 101u);

  auto b = dispatch(program, 9, /*key=*/5);
  ASSERT_EQ(b.state, RunState::kDone);
  EXPECT_EQ(b.return_value, 205u);
}

TEST_P(LoweringModeTest, UnknownWorkloadFallsThroughToHost) {
  Program program = make_lambdas();
  ASSERT_TRUE(lower_match_stage(make_spec(), program, GetParam()).ok());
  auto miss = dispatch(program, 999);
  ASSERT_EQ(miss.state, RunState::kDone);
  EXPECT_EQ(miss.return_value, kReturnToHost);
}

TEST_P(LoweringModeTest, LambdaEntriesPopulated) {
  Program program = make_lambdas();
  ASSERT_TRUE(lower_match_stage(make_spec(), program, GetParam()).ok());
  ASSERT_EQ(program.lambda_entries.size(), 2u);
  EXPECT_EQ(program.lambda_entries[0].first, 7u);
  EXPECT_EQ(program.lambda_entries[1].first, 9u);
}

INSTANTIATE_TEST_SUITE_P(Modes, LoweringModeTest,
                         ::testing::Values(LoweringMode::kNaive,
                                           LoweringMode::kReduced));

TEST(Lowering, NaiveIsStrictlyLargerThanReduced) {
  Program naive = make_lambdas();
  ASSERT_TRUE(
      lower_match_stage(make_spec(), naive, LoweringMode::kNaive).ok());
  Program reduced = make_lambdas();
  ASSERT_TRUE(
      lower_match_stage(make_spec(), reduced, LoweringMode::kReduced).ok());
  EXPECT_GT(microc::code_size(naive), microc::code_size(reduced));
}

TEST(Lowering, NaiveParsesAllFieldsReducedOnlyUsed) {
  Program naive = make_lambdas();
  ASSERT_TRUE(
      lower_match_stage(make_spec(), naive, LoweringMode::kNaive).ok());
  EXPECT_EQ(naive.parsed_fields.size(),
            static_cast<std::size_t>(microc::kHdrFieldCount));

  Program reduced = make_lambdas();
  ASSERT_TRUE(
      lower_match_stage(make_spec(), reduced, LoweringMode::kReduced).ok());
  // lambda_b reads kHdrKey; the match stage needs kHdrWorkloadId.
  EXPECT_EQ(reduced.parsed_fields.size(), 2u);
}

TEST(Lowering, RelowerIsIdempotentOnSize) {
  Program program = make_lambdas();
  ASSERT_TRUE(
      lower_match_stage(make_spec(), program, LoweringMode::kNaive).ok());
  const auto first = microc::code_size(program);
  ASSERT_TRUE(
      lower_match_stage(make_spec(), program, LoweringMode::kNaive).ok());
  EXPECT_EQ(microc::code_size(program), first);
}

TEST(Lowering, StripGeneratedRestoresUserProgram) {
  Program program = make_lambdas();
  const auto user_functions = program.functions.size();
  const auto user_objects = program.objects.size();
  ASSERT_TRUE(
      lower_match_stage(make_spec(), program, LoweringMode::kNaive).ok());
  EXPECT_GT(program.functions.size(), user_functions);
  strip_generated(program);
  EXPECT_EQ(program.functions.size(), user_functions);
  EXPECT_EQ(program.objects.size(), user_objects);
}

TEST(Lowering, UnknownActionFunctionFails) {
  Program program = make_lambdas();
  MatchSpec spec;
  spec.tables.push_back(make_lambda_table("missing_lambda", 3));
  EXPECT_FALSE(lower_match_stage(spec, program, LoweringMode::kNaive).ok());
}

TEST(Lowering, InferUsedFieldsIgnoresGeneratedCode) {
  Program program = make_lambdas();
  ASSERT_TRUE(
      lower_match_stage(make_spec(), program, LoweringMode::kNaive).ok());
  const auto used = infer_used_fields(program);
  ASSERT_EQ(used.size(), 1u);
  EXPECT_EQ(used[0], microc::kHdrKey);
}

// Differential property: naïve and reduced lowering decide identically
// over a sweep of workload IDs.
class LoweringEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(LoweringEquivalenceTest, ModesAgree) {
  const WorkloadId wid = static_cast<WorkloadId>(GetParam());
  Program naive = make_lambdas();
  ASSERT_TRUE(
      lower_match_stage(make_spec(), naive, LoweringMode::kNaive).ok());
  Program reduced = make_lambdas();
  ASSERT_TRUE(
      lower_match_stage(make_spec(), reduced, LoweringMode::kReduced).ok());
  const auto a = dispatch(naive, wid, 3, 1);
  const auto b = dispatch(reduced, wid, 3, 1);
  ASSERT_EQ(a.state, RunState::kDone);
  ASSERT_EQ(b.state, RunState::kDone);
  EXPECT_EQ(a.return_value, b.return_value);
  EXPECT_EQ(a.response, b.response);
}

INSTANTIATE_TEST_SUITE_P(WorkloadIds, LoweringEquivalenceTest,
                         ::testing::Values(0, 1, 7, 8, 9, 10, 255, 9999));

}  // namespace
}  // namespace lnic::p4
