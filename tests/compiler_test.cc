// Tests for the compiler passes: DCE, coalescing, match reduction,
// stratification, and the full pipeline — including differential tests
// that optimization preserves observable behaviour.
#include <gtest/gtest.h>

#include "compiler/analysis.h"
#include "compiler/coalesce.h"
#include "compiler/dce.h"
#include "compiler/pipeline.h"
#include "compiler/stratify.h"
#include "microc/builder.h"
#include "microc/interp.h"
#include "microc/verify.h"
#include "p4/p4.h"

namespace lnic::compiler {
namespace {

using microc::HeaderField;
using microc::Invocation;
using microc::Machine;
using microc::MemRegion;
using microc::MemScope;
using microc::ObjectStore;
using microc::Outcome;
using microc::PlacementHint;
using microc::Program;
using microc::ProgramBuilder;
using microc::RunState;

Outcome run_fn(const Program& p, std::size_t fn, const Invocation& inv = {}) {
  ObjectStore store(p);
  Machine m(p, microc::CostModel::npu(), &store);
  return m.run_function(fn, inv);
}

TEST(Dce, RemovesUnusedPureInstructions) {
  ProgramBuilder pb("t");
  auto fb = pb.function("f", 0);
  auto used = fb.const_u64(10);
  auto dead1 = fb.const_u64(99);
  auto dead2 = fb.add_imm(dead1, 1);
  (void)dead2;
  fb.ret(used);
  const auto idx = fb.finish();
  Program p = pb.take();
  const auto before = p.functions[idx].instr_count();
  const auto removed = eliminate_dead_code(p);
  EXPECT_EQ(removed, 2u);
  EXPECT_EQ(p.functions[idx].instr_count(), before - 2);
  EXPECT_EQ(run_fn(p, idx).return_value, 10u);
}

TEST(Dce, TransitiveDeadChainsRemoved) {
  ProgramBuilder pb("t");
  auto fb = pb.function("f", 0);
  auto a = fb.const_u64(1);
  auto b = fb.add_imm(a, 1);
  auto c = fb.add_imm(b, 1);
  auto d = fb.add_imm(c, 1);
  (void)d;  // whole chain dead
  fb.ret_imm(7);
  const auto idx = fb.finish();
  Program p = pb.take();
  EXPECT_EQ(eliminate_dead_code(p), 4u);
  EXPECT_EQ(run_fn(p, idx).return_value, 7u);
}

TEST(Dce, KeepsInstructionsWithSideEffects) {
  ProgramBuilder pb("t");
  const auto obj = pb.object("buf", 16, MemScope::kGlobal);
  auto fb = pb.function("f", 0);
  auto off = fb.const_u64(0);
  auto v = fb.const_u64(42);
  fb.store(obj, off, v);  // side effect: must stay
  fb.ret_imm(0);
  const auto idx = fb.finish();
  Program p = pb.take();
  EXPECT_EQ(eliminate_dead_code(p), 0u);
  (void)idx;
}

TEST(Dce, RemovesUnreachableBlocks) {
  ProgramBuilder pb("t");
  auto fb = pb.function("f", 0);
  const auto dead = fb.block();
  const auto live = fb.block();
  fb.select_block(0);
  fb.br(live);
  fb.select_block(dead);
  auto x = fb.const_u64(1);
  fb.ret(x);
  fb.select_block(live);
  fb.ret_imm(5);
  const auto idx = fb.finish();
  Program p = pb.take();
  EXPECT_GT(eliminate_dead_code(p), 0u);
  ASSERT_TRUE(microc::verify(p).ok());
  EXPECT_EQ(run_fn(p, idx).return_value, 5u);
}

TEST(Dce, DeadLoadRemovedDeadStoreKept) {
  ProgramBuilder pb("t");
  const auto obj = pb.object("buf", 16, MemScope::kGlobal);
  auto fb = pb.function("f", 0);
  auto off = fb.const_u64(0);
  auto unused = fb.load(obj, off);  // pure -> removable
  (void)unused;
  fb.ret_imm(1);
  const auto idx = fb.finish();
  Program p = pb.take();
  // The load and its (now-dead) offset const... the const feeds nothing
  // else, so both go.
  EXPECT_EQ(eliminate_dead_code(p), 2u);
  EXPECT_EQ(run_fn(p, idx).return_value, 1u);
}

TEST(Coalesce, MergesIdenticalHelpers) {
  ProgramBuilder pb("t");
  auto make_helper = [&](const std::string& name) {
    auto fb = pb.function(name, 1);
    auto x = fb.mul_imm(fb.arg(0), 7);
    auto y = fb.add_imm(x, 3);
    fb.ret(y);
    return fb.finish();
  };
  const auto h1 = make_helper("helper_copy_a");
  const auto h2 = make_helper("helper_copy_b");
  auto main = pb.function("main", 0);
  auto a = main.const_u64(1);
  auto r1 = main.call(h1, {a});
  auto r2 = main.call(h2, {r1});
  main.ret(r2);
  const auto main_idx = main.finish();
  Program p = pb.take();
  const auto before_fns = p.functions.size();
  EXPECT_EQ(coalesce_lambdas(p), 1u);
  EXPECT_EQ(p.functions.size(), before_fns - 1);
  ASSERT_TRUE(microc::verify(p).ok());
  // (1*7+3)=10 -> (10*7+3)=73
  EXPECT_EQ(run_fn(p, p.function_index("main")).return_value, 73u);
  (void)main_idx;
}

TEST(Coalesce, DifferentBodiesNotMerged) {
  ProgramBuilder pb("t");
  auto f1 = pb.function("f1", 1);
  f1.ret(f1.mul_imm(f1.arg(0), 7));
  f1.finish();
  auto f2 = pb.function("f2", 1);
  f2.ret(f2.mul_imm(f2.arg(0), 8));
  f2.finish();
  Program p = pb.take();
  EXPECT_EQ(coalesce_lambdas(p), 0u);
  EXPECT_EQ(p.functions.size(), 2u);
}

TEST(Coalesce, RemapsLambdaEntriesAndDispatch) {
  ProgramBuilder pb("t");
  auto dup1 = pb.function("dup1", 0);
  dup1.ret_imm(4);
  const auto d1 = dup1.finish();
  auto dup2 = pb.function("dup2", 0);
  dup2.ret_imm(4);
  const auto d2 = dup2.finish();
  auto dispatch = pb.function("dispatch", 0);
  auto r = dispatch.call(d2, {});
  dispatch.ret(r);
  const auto disp = dispatch.finish();
  Program p = pb.take();
  p.dispatch_function = disp;
  p.lambda_entries = {{1, d1}, {2, d2}};
  EXPECT_EQ(coalesce_lambdas(p), 1u);
  // Both entries now reference the surviving copy.
  EXPECT_EQ(p.lambda_entries[0].second, p.lambda_entries[1].second);
  EXPECT_EQ(run_fn(p, p.dispatch_function).return_value, 4u);
}

TEST(Stratify, HonoursPragmasAndCapacities) {
  ProgramBuilder pb("t");
  const auto hot = pb.object("hot", 64, MemScope::kGlobal,
                             microc::AccessPattern::kReadMostly,
                             PlacementHint::kHot);
  const auto cold = pb.object("cold", 64, MemScope::kGlobal,
                              microc::AccessPattern::kReadMostly,
                              PlacementHint::kCold);
  const auto big = pb.object("big", 1_MiB, MemScope::kGlobal);
  auto fb = pb.function("f", 0);
  auto off = fb.const_u64(0);
  // Touch all three so access estimates are nonzero.
  auto a = fb.load(hot, off);
  auto b = fb.load(cold, off);
  auto c = fb.load(big, off);
  fb.ret(fb.add(a, fb.add(b, c)));
  fb.finish();
  Program p = pb.take();
  stratify_memory(p);
  EXPECT_EQ(p.objects[hot].region, MemRegion::kLocal);
  EXPECT_EQ(p.objects[cold].region, MemRegion::kEmem);
  // 1 MiB exceeds local (4K) and CTM (256K) budgets -> IMEM.
  EXPECT_EQ(p.objects[big].region, MemRegion::kImem);
}

TEST(Stratify, UntouchedObjectsStayInEmem) {
  ProgramBuilder pb("t");
  const auto unused = pb.object("unused", 64, MemScope::kGlobal);
  auto fb = pb.function("f", 0);
  fb.ret_imm(0);
  fb.finish();
  Program p = pb.take();
  stratify_memory(p);
  EXPECT_EQ(p.objects[unused].region, MemRegion::kEmem);
}

TEST(Stratify, ReducesCodeSize) {
  ProgramBuilder pb("t");
  const auto obj = pb.object("buf", 128, MemScope::kGlobal);
  auto fb = pb.function("f", 0);
  auto off = fb.const_u64(0);
  auto acc = fb.load(obj, off);
  for (int i = 1; i < 10; ++i) {
    acc = fb.add(acc, fb.load(obj, off, i * 8));
  }
  fb.ret(acc);
  fb.finish();
  Program p = pb.take();
  const auto before = microc::code_size(p);
  stratify_memory(p);
  EXPECT_LT(microc::code_size(p), before);
}

TEST(Analysis, AccessEstimateCountsBothOperands) {
  ProgramBuilder pb("t");
  const auto a = pb.object("a", 64, MemScope::kGlobal);
  const auto b = pb.object("b", 64, MemScope::kGlobal);
  auto fb = pb.function("f", 0);
  auto off = fb.const_u64(0);
  auto len = fb.const_u64(8);
  fb.memcpy_(a, off, b, off, len);
  fb.ret_imm(0);
  fb.finish();
  Program p = pb.take();
  estimate_object_accesses(p);
  EXPECT_EQ(p.objects[a].access_estimate, 1u);
  EXPECT_EQ(p.objects[b].access_estimate, 1u);
}

// -- Full pipeline tests over a realistic multi-lambda job. ------------

// Builds lambdas with deliberate duplication (shared helper bodies) and
// memory objects, mirroring §6.4's four-lambda job in miniature.
struct Job {
  p4::MatchSpec spec;
  Program lambdas;
};

Job make_job() {
  ProgramBuilder pb("job");
  const auto content = pb.object("content", 256, MemScope::kGlobal,
                                 microc::AccessPattern::kReadMostly);

  // Identical "reply helper" duplicated across both lambdas (as users
  // copy boilerplate); coalescing should merge them.
  auto make_reply_helper = [&](const std::string& name) {
    auto fb = pb.function(name, 1);
    auto x = fb.arg(0);
    for (int i = 0; i < 20; ++i) x = fb.add_imm(x, 1);
    fb.ret(x);
    return fb.finish();
  };
  const auto helper1 = make_reply_helper("reply_helper_1");
  const auto helper2 = make_reply_helper("reply_helper_2");

  {
    auto fb = pb.function("wl_alpha", 0);
    auto key = fb.load_hdr(microc::kHdrKey);
    auto dead = fb.mul_imm(key, 3);  // dead code for DCE
    (void)dead;
    auto off = fb.const_u64(0);
    auto v = fb.load(content, off);
    auto r = fb.call(helper1, {fb.add(key, v)});
    fb.resp_word(r);
    fb.ret(r);
    fb.finish();
  }
  {
    auto fb = pb.function("wl_beta", 0);
    auto op = fb.load_hdr(microc::kHdrOp);
    auto off = fb.const_u64(8);
    auto v = fb.load(content, off);
    auto r = fb.call(helper2, {fb.add(op, v)});
    fb.resp_word(r);
    fb.ret(r);
    fb.finish();
  }

  Job job;
  job.lambdas = pb.take();
  job.spec.tables.push_back(p4::make_lambda_table("wl_alpha", 11));
  job.spec.tables.push_back(p4::make_lambda_table("wl_beta", 12));
  job.spec.tables.push_back(p4::make_route_table("wl_alpha", 11));
  job.spec.tables.push_back(p4::make_route_table("wl_beta", 12));
  return job;
}

Outcome run_request(const Program& p, WorkloadId wid, std::uint64_t key) {
  ObjectStore store(p);
  Machine m(p, microc::CostModel::npu(), &store);
  Invocation inv;
  inv.headers.fields[microc::kHdrWorkloadId] = wid;
  inv.headers.fields[microc::kHdrKey] = key;
  inv.headers.fields[microc::kHdrOp] = key;
  inv.match_data = {1};
  return m.run(inv);
}

TEST(Pipeline, EveryStageShrinksTheProgram) {
  Job job = make_job();
  auto result = compile(job.spec, std::move(job.lambdas));
  ASSERT_TRUE(result.ok()) << result.error().message;
  const auto& stages = result.value().stages;
  ASSERT_EQ(stages.size(), 4u);
  EXPECT_EQ(stages[0].stage, "unoptimized");
  for (std::size_t i = 1; i < stages.size(); ++i) {
    EXPECT_LT(stages[i].code_words, stages[i - 1].code_words)
        << "stage " << stages[i].stage;
  }
}

TEST(Pipeline, OptimizedProgramBehavesIdentically) {
  Job job1 = make_job();
  auto unopt = compile(job1.spec, std::move(job1.lambdas), Options::none());
  ASSERT_TRUE(unopt.ok());
  Job job2 = make_job();
  auto opt = compile(job2.spec, std::move(job2.lambdas));
  ASSERT_TRUE(opt.ok());

  for (const WorkloadId wid : {11u, 12u, 99u}) {
    for (const std::uint64_t key : {0ull, 5ull, 77ull}) {
      const auto a = run_request(unopt.value().program, wid, key);
      const auto b = run_request(opt.value().program, wid, key);
      ASSERT_EQ(a.state, RunState::kDone);
      ASSERT_EQ(b.state, RunState::kDone);
      EXPECT_EQ(a.return_value, b.return_value) << wid << " " << key;
      EXPECT_EQ(a.response, b.response);
    }
  }
}

TEST(Pipeline, OptimizationReducesCycles) {
  Job job1 = make_job();
  auto unopt = compile(job1.spec, std::move(job1.lambdas), Options::none());
  Job job2 = make_job();
  auto opt = compile(job2.spec, std::move(job2.lambdas));
  ASSERT_TRUE(unopt.ok() && opt.ok());
  const auto a = run_request(unopt.value().program, 11, 1);
  const auto b = run_request(opt.value().program, 11, 1);
  EXPECT_LT(b.cycles, a.cycles);
}

TEST(Pipeline, RejectsOverflowingInstructionStore) {
  Job job = make_job();
  Options options;
  options.instruction_store_words = 10;  // absurdly small
  auto result = compile(job.spec, std::move(job.lambdas), options);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.error().message.find("instruction store"),
            std::string::npos);
}

TEST(Pipeline, StagesCanBeDisabledIndividually) {
  for (int mask = 0; mask < 8; ++mask) {
    Job job = make_job();
    Options options;
    options.run_coalescing = mask & 1;
    options.run_match_reduction = mask & 2;
    options.run_stratification = mask & 4;
    auto result = compile(job.spec, std::move(job.lambdas), options);
    ASSERT_TRUE(result.ok()) << "mask=" << mask;
    const auto out = run_request(result.value().program, 12, 3);
    ASSERT_EQ(out.state, RunState::kDone) << "mask=" << mask;
  }
}

}  // namespace
}  // namespace lnic::compiler
