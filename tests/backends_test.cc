// Tests for the Backend interface: all three backends serve identical
// bytes, the paper's latency ordering holds, and the resource/startup
// models report Table 3/4-shaped values.
#include <gtest/gtest.h>

#include <optional>

#include "backends/backend.h"
#include "kvstore/cache_server.h"
#include "net/network.h"
#include "proto/rpc.h"
#include "sim/simulator.h"
#include "workloads/lambdas.h"

namespace lnic::backends {
namespace {

struct Rig {
  sim::Simulator sim;
  net::Network network{sim};
  std::unique_ptr<Backend> backend;
  std::unique_ptr<kvstore::CacheServer> cache;
  std::unique_ptr<proto::RpcClient> client;

  explicit Rig(BackendKind kind, std::uint32_t threads = 56) {
    backend = make_backend(kind, sim, network, threads);
    cache = std::make_unique<kvstore::CacheServer>(sim, network);
    backend->set_kv_server(cache->node());
    proto::RpcConfig rpc;
    rpc.retransmit_timeout = seconds(30);  // isolate from retransmits
    client = std::make_unique<proto::RpcClient>(sim, network, rpc);
    EXPECT_TRUE(backend->deploy(workloads::make_standard_workloads()).ok());
    sim.run_until(seconds(20));  // pass NIC firmware-load downtime
  }

  Result<proto::RpcResponse> call(WorkloadId wid,
                                  std::vector<std::uint8_t> payload) {
    std::optional<Result<proto::RpcResponse>> slot;
    client->call(backend->node(), wid, std::move(payload),
                 [&](Result<proto::RpcResponse> r) { slot = std::move(r); });
    sim.run();
    if (!slot.has_value()) return make_error("no response");
    return std::move(*slot);
  }
};

class AllBackendsTest : public ::testing::TestWithParam<BackendKind> {};

TEST_P(AllBackendsTest, WebResponseIdenticalBytes) {
  Rig rig(GetParam());
  auto bundle = workloads::make_standard_workloads();
  auto r = rig.call(workloads::kWebServerId, workloads::encode_web_request(1));
  ASSERT_TRUE(r.ok()) << r.error().message;
  const auto& payload = r.value().payload;
  ASSERT_EQ(payload.size(), 8u + workloads::kWebPageBytes);
  EXPECT_EQ(std::string(payload.begin() + 8, payload.end()),
            workloads::expected_web_page(bundle, 1));
}

TEST_P(AllBackendsTest, KvRoundTrip) {
  Rig rig(GetParam());
  rig.cache->put(123, 456);
  auto r = rig.call(workloads::kKvGetId, workloads::encode_kv_request(123));
  ASSERT_TRUE(r.ok());
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(r.value().payload[i]) << (8 * i);
  }
  EXPECT_EQ(v, 456u);
}

TEST_P(AllBackendsTest, StartupProfilePositive) {
  Rig rig(GetParam());
  const auto profile = rig.backend->startup_profile();
  EXPECT_GT(profile.artifact_bytes, 0u);
  EXPECT_GT(profile.startup_time, 0);
}

INSTANTIATE_TEST_SUITE_P(Kinds, AllBackendsTest,
                         ::testing::Values(BackendKind::kLambdaNic,
                                           BackendKind::kBareMetal,
                                           BackendKind::kContainer),
                         [](const auto& info) {
                           return std::string(to_string(info.param)) ==
                                          "lambda-nic"
                                      ? "LambdaNic"
                                  : to_string(info.param) ==
                                          std::string("bare-metal")
                                      ? "BareMetal"
                                      : "Container";
                         });

TEST(Backends, LatencyOrderingMatchesPaper) {
  // The headline ordering (Fig. 6): λ-NIC < bare metal < container.
  SimDuration latency[3];
  const BackendKind kinds[] = {BackendKind::kLambdaNic,
                               BackendKind::kBareMetal,
                               BackendKind::kContainer};
  for (int k = 0; k < 3; ++k) {
    Rig rig(kinds[k]);
    auto r = rig.call(workloads::kWebServerId,
                      workloads::encode_web_request(0));
    ASSERT_TRUE(r.ok());
    latency[k] = r.value().latency;
  }
  EXPECT_LT(latency[0], latency[1]);
  EXPECT_LT(latency[1], latency[2]);
  // Order-of-magnitude ratios from the paper: ~30x and ~880x for the
  // mean web-server latency. Enforce loose bands (10-100x, 300-3000x).
  const double bm = static_cast<double>(latency[1]) / latency[0];
  const double ct = static_cast<double>(latency[2]) / latency[0];
  EXPECT_GT(bm, 10.0);
  EXPECT_LT(bm, 100.0);
  EXPECT_GT(ct, 300.0);
  EXPECT_LT(ct, 3000.0);
}

TEST(Backends, LambdaNicLeavesHostIdle) {
  Rig rig(BackendKind::kLambdaNic);
  for (int i = 0; i < 20; ++i) {
    auto r = rig.call(workloads::kWebServerId,
                      workloads::encode_web_request(i & 3));
    ASSERT_TRUE(r.ok());
  }
  const auto usage = rig.backend->usage(rig.sim.now());
  EXPECT_LT(usage.host_cpu_percent, 1.0);
  EXPECT_EQ(usage.host_memory, 0u);
  EXPECT_GT(usage.nic_memory, 0u);
}

TEST(Backends, ContainerUsesMoreHostMemoryThanBareMetal) {
  Rig bm(BackendKind::kBareMetal);
  Rig ct(BackendKind::kContainer);
  auto r1 = bm.call(workloads::kWebServerId, workloads::encode_web_request(0));
  auto r2 = ct.call(workloads::kWebServerId, workloads::encode_web_request(0));
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_GT(ct.backend->usage(ct.sim.now()).host_memory,
            bm.backend->usage(bm.sim.now()).host_memory);
}

TEST(Backends, StartupOrderingMatchesTable4) {
  sim::Simulator sim;
  net::Network network(sim);
  auto nic = make_backend(BackendKind::kLambdaNic, sim, network);
  auto bm = make_backend(BackendKind::kBareMetal, sim, network);
  auto ct = make_backend(BackendKind::kContainer, sim, network);
  const auto pn = nic->startup_profile();
  const auto pb = bm->startup_profile();
  const auto pc = ct->startup_profile();
  // Table 4: sizes 11 / 17 / 153 MiB; times 19.8 / 5.0 / 31.7 s.
  EXPECT_LT(pn.artifact_bytes, pb.artifact_bytes);
  EXPECT_LT(pb.artifact_bytes, pc.artifact_bytes);
  EXPECT_LT(pb.startup_time, pn.startup_time);
  EXPECT_LT(pn.startup_time, pc.startup_time);
  EXPECT_NEAR(to_sec(pn.startup_time), 19.8, 0.5);
  EXPECT_NEAR(to_sec(pb.startup_time), 5.0, 0.3);
  EXPECT_NEAR(to_sec(pc.startup_time), 31.7, 1.0);
}

}  // namespace
}  // namespace lnic::backends
