// Tests for the Micro-C frontend: lexing, parsing, code generation,
// execution semantics of compiled source, builtins, error reporting, and
// interoperability with the compiler pipeline and P4 lowering.
#include <gtest/gtest.h>

#include "compiler/pipeline.h"
#include "microc/frontend.h"
#include "microc/interp.h"
#include "microc/lexer.h"
#include "microc/parser.h"
#include "p4/p4.h"

namespace lnic::microc {
namespace {

Outcome run_source(const std::string& source, const std::string& fn,
                   const Invocation& inv = {}) {
  auto program = compile_microc(source);
  EXPECT_TRUE(program.ok()) << (program.ok() ? "" : program.error().message);
  if (!program.ok()) return {};
  const auto idx = program.value().function_index(fn);
  EXPECT_NE(idx, Program::kNoFunction);
  ObjectStore store(program.value());
  Machine machine(program.value(), CostModel::npu(), &store);
  return machine.run_function(idx, inv);
}

// ------------------------------------------------------------------ lexer

TEST(Lexer, TokenizesIdentifiersNumbersOperators) {
  auto tokens = lex("var x = 0x1F + 42; // comment\n x <= 3");
  ASSERT_TRUE(tokens.ok());
  const auto& t = tokens.value();
  ASSERT_GE(t.size(), 9u);
  EXPECT_EQ(t[0].kind, TokenKind::kKeyword);
  EXPECT_EQ(t[1].text, "x");
  EXPECT_EQ(t[2].text, "=");
  EXPECT_EQ(t[3].number, 0x1Fu);
  EXPECT_EQ(t[5].number, 42u);
  EXPECT_EQ(t.back().kind, TokenKind::kEnd);
}

TEST(Lexer, SkipsBlockCommentsAndTracksLines) {
  auto tokens = lex("/* multi\nline */ foo");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens.value()[0].text, "foo");
  EXPECT_EQ(tokens.value()[0].line, 2u);
}

TEST(Lexer, RejectsUnterminatedComment) {
  EXPECT_FALSE(lex("/* oops").ok());
}

TEST(Lexer, RejectsStrayCharacter) {
  auto r = lex("a @ b");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("unexpected"), std::string::npos);
}

// ----------------------------------------------------------------- parser

TEST(Parser, ParsesObjectsAndFunctions) {
  auto tokens = lex(R"(
    global u8 content[256] hot readmostly;
    local u8 scratch[32];
    int f(a, b) { return a + b; }
  )");
  ASSERT_TRUE(tokens.ok());
  auto unit = parse(tokens.value());
  ASSERT_TRUE(unit.ok()) << unit.error().message;
  ASSERT_EQ(unit.value().objects.size(), 2u);
  EXPECT_EQ(unit.value().objects[0].name, "content");
  EXPECT_TRUE(unit.value().objects[0].hot);
  EXPECT_TRUE(unit.value().objects[0].read_mostly);
  EXPECT_FALSE(unit.value().objects[1].is_global);
  ASSERT_EQ(unit.value().functions.size(), 1u);
  EXPECT_EQ(unit.value().functions[0].params.size(), 2u);
}

TEST(Parser, ReportsLineNumbersInErrors) {
  auto tokens = lex("int f() {\n  var = 3;\n}");
  ASSERT_TRUE(tokens.ok());
  auto unit = parse(tokens.value());
  ASSERT_FALSE(unit.ok());
  EXPECT_NE(unit.error().message.find("line 2"), std::string::npos);
}

TEST(Parser, PrecedenceMulBeforeAdd) {
  // 2 + 3 * 4 must be 14, not 20.
  const auto out = run_source("int f() { return 2 + 3 * 4; }", "f");
  EXPECT_EQ(out.return_value, 14u);
}

TEST(Parser, ParenthesesOverridePrecedence) {
  const auto out = run_source("int f() { return (2 + 3) * 4; }", "f");
  EXPECT_EQ(out.return_value, 20u);
}

TEST(Parser, ComparisonLoosestPrecedence) {
  const auto out = run_source("int f() { return 1 + 1 == 2; }", "f");
  EXPECT_EQ(out.return_value, 1u);
}

// ---------------------------------------------------------------- codegen

TEST(Frontend, ArithmeticAndVariables) {
  const auto out = run_source(R"(
    int f() {
      var x = 10;
      var y = x * 3 - 4;   // 26
      x = y % 7;           // 5
      return x << 2;       // 20
    }
  )",
                              "f");
  ASSERT_EQ(out.state, RunState::kDone) << out.trap_message;
  EXPECT_EQ(out.return_value, 20u);
}

TEST(Frontend, UnaryOperators) {
  EXPECT_EQ(run_source("int f() { return 0 - (-5); }", "f").return_value, 5u);
  EXPECT_EQ(run_source("int f() { return !0; }", "f").return_value, 1u);
  EXPECT_EQ(run_source("int f() { return !7; }", "f").return_value, 0u);
}

TEST(Frontend, IfElseBothBranches) {
  const char* source = R"(
    int f(a) {
      if (a > 10) { return 1; } else { return 2; }
    }
  )";
  auto program = compile_microc(source);
  ASSERT_TRUE(program.ok());
  ObjectStore store(program.value());
  Machine m(program.value(), CostModel::npu(), &store);
  // Drive via a wrapper: set args by constructing the call frame through
  // a separate source-level caller instead.
  const char* full = R"(
    int pick(a) {
      if (a > 10) { return 1; } else { return 2; }
    }
    int hi() { return pick(11); }
    int lo() { return pick(10); }
  )";
  EXPECT_EQ(run_source(full, "hi").return_value, 1u);
  EXPECT_EQ(run_source(full, "lo").return_value, 2u);
}

TEST(Frontend, IfWithoutElseFallsThrough) {
  const auto out = run_source(R"(
    int f() {
      var x = 1;
      if (x == 1) { x = 5; }
      return x + 1;
    }
  )",
                              "f");
  EXPECT_EQ(out.return_value, 6u);
}

TEST(Frontend, WhileLoopSumsRange) {
  const auto out = run_source(R"(
    int f() {
      var sum = 0;
      var i = 1;
      while (i <= 10) {
        sum = sum + i;
        i = i + 1;
      }
      return sum;
    }
  )",
                              "f");
  ASSERT_EQ(out.state, RunState::kDone) << out.trap_message;
  EXPECT_EQ(out.return_value, 55u);
}

TEST(Frontend, ForLoopSumsRange) {
  const auto out = run_source(R"(
    int f() {
      var sum = 0;
      for (var i = 1; i <= 10; i += 1) { sum += i; }
      return sum;
    }
  )",
                              "f");
  ASSERT_EQ(out.state, RunState::kDone) << out.trap_message;
  EXPECT_EQ(out.return_value, 55u);
}

TEST(Frontend, ForLoopZeroIterations) {
  const auto out = run_source(
      "int f() { var n = 0; for (var i = 0; i < 0; i += 1) { n = 9; } "
      "return n; }",
      "f");
  EXPECT_EQ(out.return_value, 0u);
}

TEST(Frontend, ForWithAssignmentInit) {
  const auto out = run_source(R"(
    int f() {
      var i = 99;
      var acc = 0;
      for (i = 0; i < 4; i += 1) { acc += 10; }
      return acc + i;
    }
  )",
                              "f");
  EXPECT_EQ(out.return_value, 44u);
}

TEST(Frontend, CompoundAssignmentOperators) {
  const auto out = run_source(R"(
    int f() {
      var x = 10;
      x += 5;    // 15
      x -= 3;    // 12
      x *= 2;    // 24
      x &= 0x1C; // 24
      x |= 3;    // 27
      x ^= 1;    // 26
      return x;
    }
  )",
                              "f");
  ASSERT_EQ(out.state, RunState::kDone) << out.trap_message;
  EXPECT_EQ(out.return_value, 26u);
}

TEST(Frontend, NestedForLoops) {
  const auto out = run_source(R"(
    int f() {
      var total = 0;
      for (var i = 0; i < 5; i += 1) {
        for (var j = 0; j < i; j += 1) { total += 1; }
      }
      return total;
    }
  )",
                              "f");
  EXPECT_EQ(out.return_value, 10u);  // 0+1+2+3+4
}

TEST(Frontend, NestedLoopsAndConditionals) {
  const auto out = run_source(R"(
    int f() {
      var count = 0;
      var i = 0;
      while (i < 10) {
        var j = 0;
        while (j < 10) {
          if ((i + j) % 3 == 0) { count = count + 1; }
          j = j + 1;
        }
        i = i + 1;
      }
      return count;
    }
  )",
                              "f");
  // Pairs (i,j) in [0,10)^2 with (i+j)%3==0: 34.
  EXPECT_EQ(out.return_value, 34u);
}

TEST(Frontend, ImplicitReturnZero) {
  const auto out = run_source("int f() { var x = 3; }", "f");
  ASSERT_EQ(out.state, RunState::kDone);
  EXPECT_EQ(out.return_value, 0u);
}

TEST(Frontend, UserFunctionCalls) {
  const auto out = run_source(R"(
    int helper(x, y) { return x * y + 1; }
    int f() { return helper(6, 7); }
  )",
                              "f");
  EXPECT_EQ(out.return_value, 43u);
}

TEST(Frontend, ForwardCallsResolve) {
  const auto out = run_source(R"(
    int f() { return later(5); }
    int later(x) { return x + 100; }
  )",
                              "f");
  EXPECT_EQ(out.return_value, 105u);
}

TEST(Frontend, MemoryObjectsLoadStore) {
  const auto out = run_source(R"(
    global u8 buf[64];
    int f() {
      store8(buf, 0, 0x1122334455667788);
      store2(buf, 32, 0xABCD);
      return load8(buf, 0) & 0xFFFF | load2(buf, 32) << 16;
    }
  )",
                              "f");
  ASSERT_EQ(out.state, RunState::kDone) << out.trap_message;
  EXPECT_EQ(out.return_value, 0x7788u | (0xABCDu << 16));
}

TEST(Frontend, HeaderAndBodyBuiltins) {
  Invocation inv;
  inv.headers.fields[kHdrKey] = 77;
  inv.body = {9, 8, 7};
  const auto out = run_source(
      "int f() { return hdr(key) + body(1) + body_len(); }", "f", inv);
  EXPECT_EQ(out.return_value, 77u + 8u + 3u);
}

TEST(Frontend, ResponseBuiltins) {
  const auto out = run_source(R"(
    global u8 content[8];
    int f() {
      store1(content, 0, 65);
      resp_mem(content, 0, 1);
      resp_byte(66);
      return 0;
    }
  )",
                              "f");
  ASSERT_EQ(out.response.size(), 2u);
  EXPECT_EQ(out.response[0], 'A');
  EXPECT_EQ(out.response[1], 'B');
}

TEST(Frontend, KvBuiltinSuspends) {
  auto program = compile_microc(R"(
    int f() {
      var v = kv_get(42);
      return v * 2;
    }
  )");
  ASSERT_TRUE(program.ok());
  const auto idx = program.value().function_index("f");
  ObjectStore store(program.value());
  Machine m(program.value(), CostModel::npu(), &store);
  Invocation inv;
  Outcome out = m.run_function(idx, inv);
  ASSERT_EQ(out.state, RunState::kYield);
  EXPECT_EQ(out.ext.key, 42u);
  out = m.resume(100);
  EXPECT_EQ(out.return_value, 200u);
}

TEST(Frontend, MemcpyAndHashBuiltins) {
  const auto out = run_source(R"(
    global u8 a[32];
    global u8 b[32];
    int f() {
      store8(a, 0, 12345);
      memcpy(b, 8, a, 0, 8);
      if (hash(b, 8, 8) != hash(a, 0, 8)) { return 1; }
      return load8(b, 8);
    }
  )",
                              "f");
  EXPECT_EQ(out.return_value, 12345u);
}

TEST(Frontend, PragmasReachObjectMetadata) {
  auto program = compile_microc(R"(
    global u8 hotbuf[16] hot readmostly;
    global u8 coldbuf[16] cold writemostly;
    int f() { return load8(hotbuf, 0) + load8(coldbuf, 0); }
  )");
  ASSERT_TRUE(program.ok());
  const auto& objs = program.value().objects;
  ASSERT_EQ(objs.size(), 2u);
  EXPECT_EQ(objs[0].hint, PlacementHint::kHot);
  EXPECT_EQ(objs[0].access, AccessPattern::kReadMostly);
  EXPECT_EQ(objs[1].hint, PlacementHint::kCold);
  EXPECT_EQ(objs[1].access, AccessPattern::kWriteMostly);
}

TEST(Frontend, LocalObjectsFreshPerInvocation) {
  auto program = compile_microc(R"(
    local u8 scratch[8];
    int f() {
      var v = load8(scratch, 0) + 1;
      store8(scratch, 0, v);
      return v;
    }
  )");
  ASSERT_TRUE(program.ok());
  const auto idx = program.value().function_index("f");
  ObjectStore store(program.value());
  Machine m(program.value(), CostModel::npu(), &store);
  Invocation inv;
  EXPECT_EQ(m.run_function(idx, inv).return_value, 1u);
  EXPECT_EQ(m.run_function(idx, inv).return_value, 1u);  // zeroed again
}

// --------------------------------------------------------------- errors

TEST(FrontendErrors, UnknownVariable) {
  auto r = compile_microc("int f() { return missing; }");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("unknown variable"), std::string::npos);
}

TEST(FrontendErrors, UnknownBuiltin) {
  auto r = compile_microc("int f() { return malloc(4); }");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("unknown function"), std::string::npos);
}

TEST(FrontendErrors, WrongArity) {
  auto r = compile_microc(R"(
    int g(a) { return a; }
    int f() { return g(1, 2); }
  )");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("expects 1"), std::string::npos);
}

TEST(FrontendErrors, RedeclaredVariable) {
  auto r = compile_microc("int f() { var x = 1; var x = 2; return x; }");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("redeclared"), std::string::npos);
}

TEST(FrontendErrors, AssignUndeclared) {
  auto r = compile_microc("int f() { x = 1; return 0; }");
  ASSERT_FALSE(r.ok());
}

TEST(FrontendErrors, DuplicateFunction) {
  auto r = compile_microc("int f() { return 1; } int f() { return 2; }");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("duplicate function"), std::string::npos);
}

TEST(FrontendErrors, BadObjectArgument) {
  auto r = compile_microc("int f() { return load8(f, 0); }");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("memory object"), std::string::npos);
}

TEST(FrontendErrors, UnknownHeaderField) {
  auto r = compile_microc("int f() { return hdr(nonsense); }");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("header field"), std::string::npos);
}

TEST(FrontendErrors, RecursionRejectedAtCompileTime) {
  // NPUs cannot recurse (§3.1b); the verifier catches it at compile time.
  auto r = compile_microc("int f(n) { return f(n - 1); }");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("cycle"), std::string::npos);
}

TEST(FrontendErrors, UnreachableAfterReturn) {
  auto r = compile_microc("int f() { return 1; var x = 2; }");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("unreachable"), std::string::npos);
}

// -------------------------------------------------- end-to-end pipeline

TEST(Frontend, SourceLambdaThroughFullPipeline) {
  // A source-authored lambda deploys through the same P4 + compiler path
  // as builder-authored ones (the paper's Listing 2 flow).
  auto program = compile_microc(R"(
    global u8 message[16] hot readmostly;
    int greeter() {
      var i = 0;
      while (i < 5) {
        store1(message, i, 72 + i);   // HIJKL
        i = i + 1;
      }
      resp_mem(message, 0, 5);
      return 0;
    }
  )");
  ASSERT_TRUE(program.ok()) << program.error().message;

  p4::MatchSpec spec;
  spec.tables.push_back(p4::make_lambda_table("greeter", 9));
  spec.tables.push_back(p4::make_route_table("greeter", 9));
  auto compiled = compiler::compile(spec, std::move(program).value());
  ASSERT_TRUE(compiled.ok()) << compiled.error().message;

  ObjectStore store(compiled.value().program);
  Machine m(compiled.value().program, CostModel::npu(), &store);
  Invocation inv;
  inv.headers.fields[kHdrWorkloadId] = 9;
  inv.match_data = {1};
  const Outcome out = m.run(inv);
  ASSERT_EQ(out.state, RunState::kDone) << out.trap_message;
  EXPECT_EQ(std::string(out.response.begin(), out.response.end()), "HIJKL");
}

// Differential property: the same algorithm authored in source and via
// the builder produces identical results over a parameter sweep.
class SourceVsBuilderTest : public ::testing::TestWithParam<int> {};

TEST_P(SourceVsBuilderTest, CollatzStepsAgree) {
  const std::uint64_t n = static_cast<std::uint64_t>(GetParam());
  // Source version.
  auto program = compile_microc(R"(
    int collatz(n) {
      var steps = 0;
      while (n != 1) {
        if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
        steps = steps + 1;
      }
      return steps;
    }
  )");
  ASSERT_TRUE(program.ok());
  // Reference.
  std::uint64_t expected = 0;
  for (std::uint64_t v = n; v != 1; ++expected) {
    v = v % 2 == 0 ? v / 2 : 3 * v + 1;
  }
  // Wrap with a source-level driver for the argument.
  auto driver = compile_microc(
      "int collatz(n) {\n"
      "  var steps = 0;\n"
      "  while (n != 1) {\n"
      "    if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }\n"
      "    steps = steps + 1;\n"
      "  }\n"
      "  return steps;\n"
      "}\n"
      "int main() { return collatz(" + std::to_string(n) + "); }\n");
  ASSERT_TRUE(driver.ok());
  ObjectStore store(driver.value());
  Machine m(driver.value(), CostModel::npu(), &store);
  Invocation inv;
  const auto out = m.run_function(driver.value().function_index("main"), inv);
  ASSERT_EQ(out.state, RunState::kDone);
  EXPECT_EQ(out.return_value, expected);
}

INSTANTIATE_TEST_SUITE_P(Values, SourceVsBuilderTest,
                         ::testing::Values(2, 3, 6, 7, 27, 97, 871));

}  // namespace
}  // namespace lnic::microc
