// Tests for the Micro-C IR, builder, verifier, and interpreter:
// arithmetic semantics, memory isolation traps, external-call suspension,
// cycle accounting, and code-size lowering.
#include <gtest/gtest.h>

#include <vector>

#include "microc/builder.h"
#include "microc/interp.h"
#include "microc/ir.h"
#include "microc/verify.h"

namespace lnic::microc {
namespace {

// Builds a single-function program that returns f(args) and runs it.
struct MiniProgram {
  Program program;
  std::size_t entry;
};

Outcome run_simple(const Program& program, std::size_t fn,
                   const Invocation& inv = {}) {
  ObjectStore store(program);
  Machine machine(program, CostModel::npu(), &store);
  return machine.run_function(fn, inv);
}

TEST(Builder, EmitsVerifiableFunction) {
  ProgramBuilder pb("t");
  auto fb = pb.function("add2", 2);
  auto sum = fb.add(fb.arg(0), fb.arg(1));
  fb.ret(sum);
  const auto idx = fb.finish();
  const Status st = verify(pb.program());
  EXPECT_TRUE(st.ok()) << (st.ok() ? "" : st.error().message);

  Invocation inv;
  Program p = pb.take();
  ObjectStore store(p);
  Machine m(p, CostModel::npu(), &store);
  // Args arrive in r0..r1 — set via a wrapper that loads constants.
  // Easier: no-arg wrapper exercises kCall too.
  (void)idx;
}

TEST(Interp, ArithmeticChain) {
  ProgramBuilder pb("t");
  auto fb = pb.function("calc", 0);
  auto a = fb.const_u64(21);
  auto b = fb.const_u64(2);
  auto prod = fb.mul(a, b);          // 42
  auto c = fb.const_u64(10);
  auto diff = fb.sub(prod, c);       // 32
  auto shifted = fb.shl(diff, fb.const_u64(1)); // 64
  auto rem = fb.remu(shifted, fb.const_u64(10)); // 4
  fb.ret(rem);
  const auto idx = fb.finish();
  const Program p = pb.take();
  ASSERT_TRUE(verify(p).ok());
  const Outcome out = run_simple(p, idx);
  ASSERT_EQ(out.state, RunState::kDone);
  EXPECT_EQ(out.return_value, 4u);
  EXPECT_GT(out.cycles, 0u);
  EXPECT_EQ(out.instructions, 10u);
}

TEST(Interp, DivisionByZeroTraps) {
  ProgramBuilder pb("t");
  auto fb = pb.function("div0", 0);
  auto a = fb.const_u64(1);
  auto z = fb.const_u64(0);
  fb.ret(fb.divu(a, z));
  const auto idx = fb.finish();
  const Outcome out = run_simple(pb.take(), idx);
  EXPECT_EQ(out.state, RunState::kTrap);
  EXPECT_NE(out.trap_message.find("zero"), std::string::npos);
}

TEST(Interp, LoadStoreRoundTrip) {
  ProgramBuilder pb("t");
  const auto obj = pb.object("buf", 64, MemScope::kLocal);
  auto fb = pb.function("rw", 0);
  auto off = fb.const_u64(8);
  auto val = fb.const_u64(0xDEADBEEFCAFEBABEull);
  fb.store(obj, off, val);
  auto loaded = fb.load(obj, off);
  fb.ret(loaded);
  const auto idx = fb.finish();
  const Outcome out = run_simple(pb.take(), idx);
  ASSERT_EQ(out.state, RunState::kDone);
  EXPECT_EQ(out.return_value, 0xDEADBEEFCAFEBABEull);
}

TEST(Interp, NarrowWidthsMaskCorrectly) {
  ProgramBuilder pb("t");
  const auto obj = pb.object("buf", 64, MemScope::kLocal);
  auto fb = pb.function("narrow", 0);
  auto off = fb.const_u64(0);
  auto val = fb.const_u64(0x1122334455667788ull);
  fb.store(obj, off, val, 0, 2);          // stores 0x7788
  auto loaded = fb.load(obj, off, 0, 2);  // loads 0x7788
  fb.ret(loaded);
  const auto idx = fb.finish();
  const Outcome out = run_simple(pb.take(), idx);
  ASSERT_EQ(out.state, RunState::kDone);
  EXPECT_EQ(out.return_value, 0x7788u);
}

TEST(Interp, OutOfBoundsLoadTrapsWithObjectName) {
  // Runtime half of the isolation story (D2): a lambda cannot read
  // outside its objects.
  ProgramBuilder pb("t");
  const auto obj = pb.object("small", 8, MemScope::kLocal);
  auto fb = pb.function("oob", 0);
  auto off = fb.const_u64(8);  // 8 + width 8 > size 8
  fb.ret(fb.load(obj, off));
  const auto idx = fb.finish();
  const Outcome out = run_simple(pb.take(), idx);
  EXPECT_EQ(out.state, RunState::kTrap);
  EXPECT_NE(out.trap_message.find("small"), std::string::npos);
}

TEST(Interp, GlobalObjectsPersistAcrossInvocations) {
  // §4.1: "global objects that persist state across runs".
  ProgramBuilder pb("t");
  const auto counter = pb.object("counter", 8, MemScope::kGlobal);
  auto fb = pb.function("bump", 0);
  auto zero = fb.const_u64(0);
  auto cur = fb.load(counter, zero);
  auto next = fb.add_imm(cur, 1);
  fb.store(counter, zero, next);
  fb.ret(next);
  const auto idx = fb.finish();
  const Program p = pb.take();
  ObjectStore store(p);
  Machine m(p, CostModel::npu(), &store);
  Invocation inv;
  EXPECT_EQ(m.run_function(idx, inv).return_value, 1u);
  EXPECT_EQ(m.run_function(idx, inv).return_value, 2u);
  EXPECT_EQ(m.run_function(idx, inv).return_value, 3u);
}

TEST(Interp, LocalObjectsZeroedPerInvocation) {
  ProgramBuilder pb("t");
  const auto scratch = pb.object("scratch", 8, MemScope::kLocal);
  auto fb = pb.function("bump", 0);
  auto zero = fb.const_u64(0);
  auto cur = fb.load(scratch, zero);
  auto next = fb.add_imm(cur, 1);
  fb.store(scratch, zero, next);
  fb.ret(next);
  const auto idx = fb.finish();
  const Program p = pb.take();
  ObjectStore store(p);
  Machine m(p, CostModel::npu(), &store);
  Invocation inv;
  EXPECT_EQ(m.run_function(idx, inv).return_value, 1u);
  EXPECT_EQ(m.run_function(idx, inv).return_value, 1u);
}

TEST(Interp, BranchingLoopComputesSum) {
  // sum(1..10) via a loop across basic blocks.
  ProgramBuilder pb("t");
  const auto acc_obj = pb.object("acc", 16, MemScope::kLocal);
  auto fb = pb.function("sum", 0);
  auto zero = fb.const_u64(0);
  auto eight = fb.const_u64(8);
  fb.store(acc_obj, zero, zero);             // acc = 0
  auto one = fb.const_u64(1);
  fb.store(acc_obj, eight, one);             // i = 1
  const auto loop = fb.block();
  const auto body = fb.block();
  const auto done = fb.block();
  fb.select_block(0);
  fb.br(loop);
  fb.select_block(loop);
  auto i = fb.load(acc_obj, eight);
  auto limit = fb.const_u64(10);
  auto cont = fb.cmp_leu(i, limit);
  fb.br_if(cont, body, done);
  fb.select_block(body);
  auto acc = fb.load(acc_obj, zero);
  auto i2 = fb.load(acc_obj, eight);
  auto acc2 = fb.add(acc, i2);
  fb.store(acc_obj, zero, acc2);
  auto i3 = fb.add_imm(i2, 1);
  fb.store(acc_obj, eight, i3);
  fb.br(loop);
  fb.select_block(done);
  auto result = fb.load(acc_obj, zero);
  fb.ret(result);
  const auto idx = fb.finish();
  const Program p = pb.take();
  ASSERT_TRUE(verify(p).ok());
  const Outcome out = run_simple(p, idx);
  ASSERT_EQ(out.state, RunState::kDone);
  EXPECT_EQ(out.return_value, 55u);
}

TEST(Interp, CallPassesArgsAndReturns) {
  ProgramBuilder pb("t");
  auto helper = pb.function("mul3", 1);
  auto tripled = helper.mul_imm(helper.arg(0), 3);
  helper.ret(tripled);
  const auto helper_idx = helper.finish();

  auto main = pb.function("main", 0);
  auto x = main.const_u64(14);
  auto r = main.call(helper_idx, {x});
  main.ret(r);
  const auto main_idx = main.finish();
  const Program p = pb.take();
  ASSERT_TRUE(verify(p).ok());
  const Outcome out = run_simple(p, main_idx);
  ASSERT_EQ(out.state, RunState::kDone);
  EXPECT_EQ(out.return_value, 42u);
}

TEST(Interp, HeaderAndBodyAccess) {
  ProgramBuilder pb("t");
  auto fb = pb.function("hdr", 0);
  auto wid = fb.load_hdr(kHdrWorkloadId);
  auto blen = fb.body_len();
  auto b0 = fb.load_body(fb.const_u64(0));
  auto sum = fb.add(wid, fb.add(blen, b0));
  fb.ret(sum);
  const auto idx = fb.finish();
  Invocation inv;
  inv.headers.fields[kHdrWorkloadId] = 100;
  inv.body = {7, 8, 9};
  const Outcome out = run_simple(pb.take(), idx, inv);
  ASSERT_EQ(out.state, RunState::kDone);
  EXPECT_EQ(out.return_value, 100u + 3u + 7u);
}

TEST(Interp, ResponseEmission) {
  ProgramBuilder pb("t");
  const auto obj = pb.object("content", 16, MemScope::kGlobal);
  auto fb = pb.function("resp", 0);
  auto off = fb.const_u64(0);
  auto ch = fb.const_u64('A');
  fb.store(obj, off, ch, 0, 1);
  auto len = fb.const_u64(1);
  fb.resp_mem(obj, off, len);
  fb.resp_byte(fb.const_u64('B'));
  fb.ret_imm(0);
  const auto idx = fb.finish();
  const Outcome out = run_simple(pb.take(), idx);
  ASSERT_EQ(out.state, RunState::kDone);
  ASSERT_EQ(out.response.size(), 2u);
  EXPECT_EQ(out.response[0], 'A');
  EXPECT_EQ(out.response[1], 'B');
}

TEST(Interp, MemCpyMovesBytesAndCharges) {
  ProgramBuilder pb("t");
  const auto src = pb.object("src", 256, MemScope::kGlobal);
  const auto dst = pb.object("dst", 256, MemScope::kGlobal);
  auto fb = pb.function("copy", 0);
  auto zero = fb.const_u64(0);
  // Fill src[0..8) with a known value first.
  auto v = fb.const_u64(0x0123456789ABCDEFull);
  fb.store(src, zero, v);
  auto len = fb.const_u64(8);
  fb.memcpy_(dst, zero, src, zero, len);
  fb.ret(fb.load(dst, zero));
  const auto idx = fb.finish();
  const Outcome out = run_simple(pb.take(), idx);
  ASSERT_EQ(out.state, RunState::kDone);
  EXPECT_EQ(out.return_value, 0x0123456789ABCDEFull);
}

TEST(Interp, GrayscaleConvertsPixels) {
  ProgramBuilder pb("t");
  const auto img = pb.object("img", 8, MemScope::kGlobal);   // 2 RGBA pixels
  const auto gray = pb.object("gray", 2, MemScope::kGlobal);
  auto fb = pb.function("g", 0);
  auto zero = fb.const_u64(0);
  // Pixel 0: pure white -> 255-ish; pixel 1: pure red -> 77-ish.
  auto white = fb.const_u64(0x00FFFFFFu | (0xFFull << 24));
  fb.store(img, zero, white, 0, 4);
  auto red = fb.const_u64(0x000000FFu);  // little-endian: R=0xFF first byte
  fb.store(img, fb.const_u64(4), red, 0, 4);
  auto two = fb.const_u64(2);
  fb.grayscale(gray, zero, img, zero, two);
  auto g0 = fb.load(gray, zero, 0, 1);
  auto g1 = fb.load(gray, fb.const_u64(1), 0, 1);
  auto packed = fb.or_(fb.shl(g1, fb.const_u64(8)), g0);
  fb.ret(packed);
  const auto idx = fb.finish();
  const Outcome out = run_simple(pb.take(), idx);
  ASSERT_EQ(out.state, RunState::kDone);
  EXPECT_EQ(out.return_value & 0xFF, (77u * 255 + 150u * 255 + 29u * 255) >> 8);
  EXPECT_EQ((out.return_value >> 8) & 0xFF, (77u * 255) >> 8);
}

TEST(Interp, ExtCallSuspendsAndResumes) {
  ProgramBuilder pb("t");
  auto fb = pb.function("kv", 0);
  auto key = fb.const_u64(1234);
  auto zero = fb.const_u64(0);
  auto reply = fb.ext_call(0, key, zero);  // GET
  auto doubled = fb.mul_imm(reply, 2);
  fb.ret(doubled);
  const auto idx = fb.finish();
  const Program p = pb.take();
  ObjectStore store(p);
  Machine m(p, CostModel::npu(), &store);
  Invocation inv;
  Outcome out = m.run_function(idx, inv);
  ASSERT_EQ(out.state, RunState::kYield);
  EXPECT_EQ(out.ext.kind, 0);
  EXPECT_EQ(out.ext.key, 1234u);
  EXPECT_TRUE(m.suspended());
  out = m.resume(21);
  ASSERT_EQ(out.state, RunState::kDone);
  EXPECT_EQ(out.return_value, 42u);
  EXPECT_FALSE(m.suspended());
}

TEST(Interp, FuelExhaustionTraps) {
  // Infinite loop must hit the compute limit, not hang (§2.1 limits).
  ProgramBuilder pb("t");
  auto fb = pb.function("spin", 0);
  const auto loop = fb.block();
  fb.select_block(0);
  fb.br(loop);
  fb.select_block(loop);
  fb.br(loop);
  const auto idx = fb.finish();
  const Program p = pb.take();
  ObjectStore store(p);
  Machine m(p, CostModel::npu(), &store);
  m.set_fuel(10'000);
  Invocation inv;
  const Outcome out = m.run_function(idx, inv);
  EXPECT_EQ(out.state, RunState::kTrap);
  EXPECT_NE(out.trap_message.find("fuel"), std::string::npos);
}

TEST(Interp, CallDepthLimitTraps) {
  // Self-recursive function must trap (recursion unsupported, §3.1b).
  ProgramBuilder pb("t");
  auto fb = pb.function("rec", 0);
  auto r = fb.call(0, {});  // calls itself
  fb.ret(r);
  const auto idx = fb.finish();
  const Outcome out = run_simple(pb.take(), idx);
  EXPECT_EQ(out.state, RunState::kTrap);
  EXPECT_NE(out.trap_message.find("depth"), std::string::npos);
}

TEST(Interp, SelectPicksByCondition) {
  ProgramBuilder pb("t");
  auto fb = pb.function("sel", 0);
  auto cond = fb.const_u64(1);
  auto a = fb.const_u64(10);
  auto b = fb.const_u64(20);
  // kSelect: dst = cond ? r[b-field] : r[imm]; use builder-level emit.
  Reg d = fb.reg();
  (void)d;
  // Easier through source-free builder: use cmp+branchless via raw Instr
  // is awkward here; exercise via arithmetic identity instead:
  // select(1, 10, 20) == 10 emulated by the interpreter opcode.
  Program p = pb.take();
  Function f;
  f.name = "sel2";
  f.num_regs = 4;
  BasicBlock blk;
  blk.instrs.push_back({.op = Opcode::kConst, .dst = 0, .imm = 0});
  blk.instrs.push_back({.op = Opcode::kConst, .dst = 1, .imm = 10});
  blk.instrs.push_back({.op = Opcode::kConst, .dst = 2, .imm = 20});
  blk.instrs.push_back({.op = Opcode::kSelect, .dst = 3, .a = 0, .b = 1,
                        .imm = 2});
  blk.instrs.push_back({.op = Opcode::kRet, .a = 3});
  f.blocks.push_back(blk);
  p.functions.push_back(f);
  ASSERT_TRUE(verify(p).ok());
  const Outcome out = run_simple(p, p.functions.size() - 1);
  EXPECT_EQ(out.return_value, 20u);  // cond = 0 -> else branch (r[imm])
  (void)cond; (void)a; (void)b;
}

TEST(Interp, RespWordLittleEndianOrder) {
  ProgramBuilder pb("t");
  auto fb = pb.function("f", 0);
  fb.resp_word(fb.const_u64(0x0102030405060708ull));
  fb.ret_imm(0);
  const auto idx = fb.finish();
  const Outcome out = run_simple(pb.take(), idx);
  ASSERT_EQ(out.response.size(), 8u);
  EXPECT_EQ(out.response[0], 0x08);
  EXPECT_EQ(out.response[7], 0x01);
}

TEST(Interp, BodyCopyRoundTrip) {
  ProgramBuilder pb("t");
  const auto obj = pb.object("buf", 32, MemScope::kLocal);
  auto fb = pb.function("f", 0);
  auto zero = fb.const_u64(0);
  auto two = fb.const_u64(2);
  auto len = fb.const_u64(4);
  fb.body_copy(obj, zero, two, len);  // buf[0..4) = body[2..6)
  fb.ret(fb.load(obj, zero, 0, 4));
  const auto idx = fb.finish();
  Invocation inv;
  inv.body = {0xAA, 0xBB, 0x11, 0x22, 0x33, 0x44, 0xCC};
  const Outcome out = run_simple(pb.take(), idx, inv);
  ASSERT_EQ(out.state, RunState::kDone) << out.trap_message;
  EXPECT_EQ(out.return_value, 0x44332211u);
}

TEST(Interp, BodyCopyOutOfBoundsTraps) {
  ProgramBuilder pb("t");
  const auto obj = pb.object("buf", 8, MemScope::kLocal);
  auto fb = pb.function("f", 0);
  auto zero = fb.const_u64(0);
  auto len = fb.const_u64(16);  // body shorter than 16
  fb.body_copy(obj, zero, zero, len);
  fb.ret_imm(0);
  const auto idx = fb.finish();
  Invocation inv;
  inv.body = {1, 2, 3};
  const Outcome out = run_simple(pb.take(), idx, inv);
  EXPECT_EQ(out.state, RunState::kTrap);
}

TEST(Interp, HashStableAcrossRuns) {
  ProgramBuilder pb("t");
  const auto obj = pb.object("buf", 64, MemScope::kGlobal);
  auto fb = pb.function("f", 0);
  auto zero = fb.const_u64(0);
  auto v = fb.const_u64(0x1234);
  fb.store(obj, zero, v);
  auto len = fb.const_u64(16);
  fb.ret(fb.hash(obj, zero, len));
  const auto idx = fb.finish();
  const Program p = pb.take();
  const auto a = run_simple(p, idx).return_value;
  const auto b = run_simple(p, idx).return_value;
  EXPECT_EQ(a, b);
  EXPECT_NE(a, 0u);
}

TEST(Interp, AbortClearsSuspension) {
  ProgramBuilder pb("t");
  auto fb = pb.function("f", 0);
  auto key = fb.const_u64(1);
  auto zero = fb.const_u64(0);
  fb.ret(fb.ext_call(0, key, zero));
  const auto idx = fb.finish();
  const Program p = pb.take();
  ObjectStore store(p);
  Machine m(p, CostModel::npu(), &store);
  Invocation inv;
  auto out = m.run_function(idx, inv);
  ASSERT_EQ(out.state, RunState::kYield);
  m.abort();  // e.g. the external call timed out
  EXPECT_FALSE(m.suspended());
  // The machine is reusable for a fresh invocation afterwards.
  out = m.run_function(idx, inv);
  EXPECT_EQ(out.state, RunState::kYield);
}

TEST(Verify, RejectsDirectRecursion) {
  ProgramBuilder pb("t");
  auto fb = pb.function("rec", 0);
  auto r = fb.call(0, {});
  fb.ret(r);
  fb.finish();
  const Status st = verify(pb.program());
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.error().message.find("cycle"), std::string::npos);
}

TEST(Verify, RejectsMutualRecursion) {
  ProgramBuilder pb("t");
  auto a = pb.function("a", 0);
  auto ra = a.call(1, {});
  a.ret(ra);
  a.finish();
  auto b = pb.function("b", 0);
  auto rb = b.call(0, {});
  b.ret(rb);
  b.finish();
  EXPECT_FALSE(verify(pb.program()).ok());
}

TEST(Verify, AcceptsDiamondCallGraph) {
  // a->b, a->c, b->d, c->d: shared callee but no cycle.
  ProgramBuilder pb("t");
  auto d = pb.function("d", 0);
  d.ret_imm(1);
  const auto di = d.finish();
  auto b = pb.function("b", 0);
  b.ret(b.call(di, {}));
  const auto bi = b.finish();
  auto c = pb.function("c", 0);
  c.ret(c.call(di, {}));
  const auto ci = c.finish();
  auto a = pb.function("a", 0);
  auto x = a.call(bi, {});
  auto y = a.call(ci, {});
  a.ret(a.add(x, y));
  a.finish();
  EXPECT_TRUE(verify(pb.program()).ok());
}

TEST(CostModel, RegionLatencyOrdering) {
  const CostModel npu = CostModel::npu();
  EXPECT_LT(npu.region_read[0], npu.region_read[1]);
  EXPECT_LT(npu.region_read[1], npu.region_read[2]);
  EXPECT_LT(npu.region_read[2], npu.region_read[3]);
}

TEST(CostModel, CyclesToDuration) {
  const CostModel npu = CostModel::npu();
  // 633 cycles at 633 MHz = 1 us.
  EXPECT_NEAR(static_cast<double>(npu.cycles_to_duration(633)), 1000.0, 2.0);
}

TEST(CostModel, PythonRuntimeScalesCycles) {
  ProgramBuilder pb("t");
  auto fb = pb.function("f", 0);
  auto a = fb.const_u64(5);
  auto b = fb.add_imm(a, 3);
  fb.ret(b);
  const auto idx = fb.finish();
  const Program p = pb.take();
  ObjectStore s1(p), s2(p);
  Machine native(p, CostModel::host_native(), &s1);
  Machine python(p, CostModel::host_python(), &s2);
  Invocation inv;
  const auto n = native.run_function(idx, inv);
  const auto py = python.run_function(idx, inv);
  const double factor = microc::CostModel::host_python().runtime_factor;
  EXPECT_NEAR(static_cast<double>(py.cycles),
              static_cast<double>(n.cycles) * factor,
              static_cast<double>(n.cycles) * factor * 0.01);
}

TEST(CodeSize, MemoryPlacementChangesLoweredSize) {
  ProgramBuilder pb("t");
  const auto obj = pb.object("buf", 64, MemScope::kGlobal);
  auto fb = pb.function("f", 0);
  auto zero = fb.const_u64(0);
  fb.ret(fb.load(obj, zero));
  fb.finish();
  Program p = pb.take();
  p.objects[obj].region = MemRegion::kEmem;
  const auto emem_size = code_size(p);
  p.objects[obj].region = MemRegion::kLocal;
  const auto local_size = code_size(p);
  EXPECT_GT(emem_size, local_size);
}

TEST(CodeSize, ParserFieldsCountTowardSize) {
  ProgramBuilder pb("t");
  auto fb = pb.function("f", 0);
  fb.ret_imm(0);
  fb.finish();
  Program p0 = pb.take();
  const auto base = code_size(p0);
  p0.parsed_fields = {kHdrWorkloadId, kHdrKey, kHdrOp};
  EXPECT_EQ(code_size(p0), base + 3);
}

TEST(Verify, RejectsBadBranchTarget) {
  Program p;
  Function f;
  f.name = "bad";
  f.num_regs = 1;
  BasicBlock b;
  b.instrs.push_back({.op = Opcode::kBr, .imm = 5});
  f.blocks.push_back(b);
  p.functions.push_back(f);
  EXPECT_FALSE(verify(p).ok());
}

TEST(Verify, RejectsMissingTerminator) {
  Program p;
  Function f;
  f.name = "bad";
  f.num_regs = 2;
  BasicBlock b;
  b.instrs.push_back({.op = Opcode::kConst, .dst = 0, .imm = 1});
  f.blocks.push_back(b);
  p.functions.push_back(f);
  EXPECT_FALSE(verify(p).ok());
}

TEST(Verify, RejectsRegisterOutOfRange) {
  Program p;
  Function f;
  f.name = "bad";
  f.num_regs = 1;
  BasicBlock b;
  b.instrs.push_back({.op = Opcode::kMov, .dst = 0, .a = 9});
  b.instrs.push_back({.op = Opcode::kRet, .a = 0});
  f.blocks.push_back(b);
  p.functions.push_back(f);
  EXPECT_FALSE(verify(p).ok());
}

TEST(Verify, RejectsWrongCallArity) {
  ProgramBuilder pb("t");
  auto helper = pb.function("h", 2);
  helper.ret(helper.arg(0));
  const auto h = helper.finish();
  Program p = pb.take();
  Function f;
  f.name = "caller";
  f.num_regs = 4;
  BasicBlock b;
  b.instrs.push_back({.op = Opcode::kCall, .dst = 0, .a = 0, .b = 1,
                      .imm = static_cast<std::int64_t>(h)});
  b.instrs.push_back({.op = Opcode::kRet, .a = 0});
  f.blocks.push_back(b);
  p.functions.push_back(f);
  EXPECT_FALSE(verify(p).ok());
}

// Property: dynamic cycle count is monotone under appended busywork.
class CycleMonotoneTest : public ::testing::TestWithParam<int> {};

TEST_P(CycleMonotoneTest, MoreWorkMoreCycles) {
  const int extra = GetParam();
  auto build = [](int busywork) {
    ProgramBuilder pb("t");
    auto fb = pb.function("f", 0);
    auto acc = fb.const_u64(1);
    for (int i = 0; i < busywork; ++i) acc = fb.add_imm(acc, 1);
    fb.ret(acc);
    const auto idx = fb.finish();
    Program p = pb.take();
    ObjectStore store(p);
    Machine m(p, CostModel::npu(), &store);
    Invocation inv;
    return m.run_function(idx, inv).cycles;
  };
  EXPECT_LT(build(extra), build(extra + 10));
}

INSTANTIATE_TEST_SUITE_P(Sizes, CycleMonotoneTest,
                         ::testing::Values(0, 5, 50, 500));

}  // namespace
}  // namespace lnic::microc
