// Structural tests for the B+-tree backing the transactional store:
// split/merge/underflow invariants, ordered iteration under random
// interleaved insert/erase (cross-checked against std::map), and the
// NIC-resident node cache (LRU, invalidation, capacity-0 baseline).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.h"
#include "kvstore/btree.h"

namespace lnic::kvstore {
namespace {

void expect_invariants(const BPlusTree& tree) {
  std::string why;
  EXPECT_TRUE(tree.check_invariants(&why)) << why;
}

TEST(BTreeTest, EmptyTree) {
  BPlusTree tree;
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1u);
  EXPECT_FALSE(tree.contains(7));
  EXPECT_FALSE(tree.erase(7));
  expect_invariants(tree);
}

TEST(BTreeTest, InsertLookupUpdate) {
  BPlusTree tree(BTreeConfig{4});
  EXPECT_TRUE(tree.put(10, 100));
  EXPECT_TRUE(tree.put(20, 200));
  EXPECT_FALSE(tree.put(10, 111));  // update, not insert
  Value v = 0;
  ASSERT_TRUE(tree.get(10, &v));
  EXPECT_EQ(v, 111u);
  ASSERT_TRUE(tree.get(20, &v));
  EXPECT_EQ(v, 200u);
  EXPECT_EQ(tree.size(), 2u);
  expect_invariants(tree);
}

TEST(BTreeTest, SequentialInsertSplitsAndStaysBalanced) {
  BPlusTree tree(BTreeConfig{4});
  for (Key k = 0; k < 1000; ++k) {
    ASSERT_TRUE(tree.put(k, k * 3));
    if (k % 97 == 0) expect_invariants(tree);
  }
  EXPECT_EQ(tree.size(), 1000u);
  EXPECT_GT(tree.height(), 3u);  // order 4 must have split many times
  expect_invariants(tree);
  for (Key k = 0; k < 1000; ++k) {
    Value v = 0;
    ASSERT_TRUE(tree.get(k, &v)) << "key " << k;
    EXPECT_EQ(v, k * 3);
  }
}

TEST(BTreeTest, EraseUnderflowMergesBackToSingleLeaf) {
  BPlusTree tree(BTreeConfig{4});
  for (Key k = 0; k < 300; ++k) tree.put(k, k);
  for (Key k = 0; k < 300; ++k) {
    ASSERT_TRUE(tree.erase(k)) << "key " << k;
    if (k % 37 == 0) expect_invariants(tree);
  }
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1u);  // root collapsed all the way down
  EXPECT_EQ(tree.node_count(), 1u);
  expect_invariants(tree);
}

TEST(BTreeTest, RandomInterleavedAgainstStdMap) {
  BPlusTree tree(BTreeConfig{8});
  std::map<Key, Value> model;
  Rng rng(42);
  for (int step = 0; step < 20000; ++step) {
    const Key k = rng.next_below(512);  // small space forces collisions
    if (rng.next_bool(0.4) && !model.empty()) {
      EXPECT_EQ(tree.erase(k), model.erase(k) > 0);
    } else {
      const Value v = rng.next_u64();
      EXPECT_EQ(tree.put(k, v), model.emplace(k, v).second);
      model[k] = v;
    }
    if (step % 1999 == 0) expect_invariants(tree);
  }
  expect_invariants(tree);
  ASSERT_EQ(tree.size(), model.size());
  // Ordered iteration must match the model exactly.
  std::vector<std::pair<Key, Value>> out;
  tree.scan(0, model.size() + 10, &out);
  ASSERT_EQ(out.size(), model.size());
  auto it = model.begin();
  for (const auto& [k, v] : out) {
    EXPECT_EQ(k, it->first);
    EXPECT_EQ(v, it->second);
    ++it;
  }
}

TEST(BTreeTest, ScanStartsAtLowerBoundAndCrossesLeaves) {
  BPlusTree tree(BTreeConfig{4});
  for (Key k = 0; k < 100; k += 2) tree.put(k, k + 1);
  std::vector<std::pair<Key, Value>> out;
  EXPECT_EQ(tree.scan(11, 5, &out), 5u);
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out.front().first, 12u);  // first key >= 11
  EXPECT_EQ(out.back().first, 20u);
  out.clear();
  EXPECT_EQ(tree.scan(95, 100, &out), 2u);  // clipped at the end
}

TEST(BTreeTest, PathForReportsRootToLeafOfCurrentHeight) {
  BPlusTree tree(BTreeConfig{4});
  for (Key k = 0; k < 500; ++k) tree.put(k, k);
  std::vector<PageId> path;
  tree.path_for(250, &path);
  EXPECT_EQ(path.size(), tree.height());
  // Scans that span leaves touch strictly more pages.
  std::vector<PageId> spath;
  tree.scan_path(250, 50, &spath);
  EXPECT_GT(spath.size(), path.size());
}

TEST(BTreeTest, DirtyAndFreedPagesAreReported) {
  BPlusTree tree(BTreeConfig{4});
  tree.put(1, 1);
  EXPECT_FALSE(tree.last_dirty().empty());
  // Fill until a split happens: the dirty set must then cover >1 page.
  const std::size_t before = tree.node_count();
  Key next = 2;
  while (tree.node_count() == before) tree.put(next++, next);
  EXPECT_GE(tree.last_dirty().size(), 2u);
  // Drain everything again: merges must report freed pages.
  bool saw_freed = false;
  for (Key k = 1; k < next; ++k) {
    tree.erase(k);
    if (!tree.last_freed().empty()) saw_freed = true;
  }
  EXPECT_TRUE(saw_freed);
  EXPECT_EQ(tree.size(), 0u);
  expect_invariants(tree);
}

// ---------------------------------------------------------- NodeCache

TEST(NodeCacheTest, HitMissAndLruEviction) {
  NodeCache cache(2);
  EXPECT_FALSE(cache.access(1));  // miss
  cache.insert(1);
  EXPECT_TRUE(cache.access(1));  // hit
  cache.insert(2);
  EXPECT_TRUE(cache.access(1));  // 1 is now MRU
  cache.insert(3);               // evicts 2 (LRU)
  EXPECT_FALSE(cache.resident(2));
  EXPECT_TRUE(cache.resident(1));
  EXPECT_TRUE(cache.resident(3));
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(NodeCacheTest, InvalidateDropsResidentPage) {
  NodeCache cache(4);
  cache.insert(7);
  EXPECT_TRUE(cache.invalidate(7));
  EXPECT_FALSE(cache.resident(7));
  EXPECT_FALSE(cache.invalidate(7));  // second invalidate is a no-op
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(NodeCacheTest, CapacityZeroIsHostBaseline) {
  NodeCache cache(0);
  cache.insert(1);
  EXPECT_FALSE(cache.access(1));  // never resident, always a miss
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_DOUBLE_EQ(cache.stats().hit_ratio(), 0.0);
}

}  // namespace
}  // namespace lnic::kvstore
