// Integration tests for the lnicctl CLI: the compile -> disasm -> run
// workflow over real files, plus error handling. Spawns the actual
// binary (path injected by CMake via LNICCTL_PATH).
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

namespace {

#ifndef LNICCTL_PATH
#define LNICCTL_PATH "./lnicctl"
#endif

struct CommandResult {
  int exit_code;
  std::string output;  // stdout + stderr
};

CommandResult run_command(const std::string& args) {
  const std::string command = std::string(LNICCTL_PATH) + " " + args + " 2>&1";
  std::array<char, 4096> buffer;
  std::string output;
  FILE* pipe = popen(command.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  while (fgets(buffer.data(), buffer.size(), pipe) != nullptr) {
    output += buffer.data();
  }
  const int status = pclose(pipe);
  return CommandResult{WEXITSTATUS(status), output};
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  out << content;
}

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Per-test directory: ctest runs the discovered cases as separate
    // processes, concurrently — sharing TempDir() directly races.
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = ::testing::TempDir() + "lnic_cli_" + info->name() + "/";
    std::filesystem::create_directories(dir_);
    write_file(dir_ + "adder.mc", R"(
      global u8 scratch[32];
      int adder() {
        var total = hdr(key) + hdr(value);
        store8(scratch, 0, total);
        resp_word(load8(scratch, 0));
        return 0;
      }
    )");
    write_file(dir_ + "adder.p4", R"(
      table m { key = { workload_id; } entry (3) -> adder; }
      control ingress { apply(m); }
    )");
  }
  std::string dir_;
};

TEST_F(CliTest, CompileProducesFirmware) {
  const auto r = run_command("compile " + dir_ + "adder.mc --p4 " + dir_ +
                             "adder.p4 -o " + dir_ + "adder.lnfw");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("unoptimized"), std::string::npos);
  EXPECT_NE(r.output.find("memory-stratification"), std::string::npos);
  EXPECT_NE(r.output.find("wrote"), std::string::npos);
  std::ifstream fw(dir_ + "adder.lnfw", std::ios::binary);
  EXPECT_TRUE(fw.good());
}

TEST_F(CliTest, RunExecutesTheLambda) {
  ASSERT_EQ(run_command("compile " + dir_ + "adder.mc --p4 " + dir_ +
                        "adder.p4 -o " + dir_ + "adder.lnfw")
                .exit_code,
            0);
  const auto r = run_command("run " + dir_ +
                             "adder.lnfw --wid 3 --key 40 --value 2");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("return: 0"), std::string::npos);
  // 40 + 2 = 42 = 0x2a little-endian in the response.
  EXPECT_NE(r.output.find("2a 00 00 00 00 00 00 00"), std::string::npos);
  EXPECT_NE(r.output.find("cycles:"), std::string::npos);
}

TEST_F(CliTest, DisasmListsTheProgram) {
  ASSERT_EQ(run_command("compile " + dir_ + "adder.mc --p4 " + dir_ +
                        "adder.p4 -o " + dir_ + "adder.lnfw")
                .exit_code,
            0);
  const auto r = run_command("disasm " + dir_ + "adder.lnfw");
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("func adder"), std::string::npos);
  EXPECT_NE(r.output.find("scratch"), std::string::npos);
  EXPECT_NE(r.output.find("__match_dispatch"), std::string::npos);
}

TEST_F(CliTest, CompileWithoutP4UsesDefaultSpec) {
  const auto r = run_command("compile " + dir_ + "adder.mc -o " + dir_ +
                             "auto.lnfw");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  const auto run = run_command("run " + dir_ +
                               "auto.lnfw --wid 1 --key 1 --value 2");
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_NE(run.output.find("03 00"), std::string::npos);
}

TEST_F(CliTest, HostCostModelReportsMoreTime) {
  ASSERT_EQ(run_command("compile " + dir_ + "adder.mc -o " + dir_ +
                        "auto.lnfw")
                .exit_code,
            0);
  const auto npu = run_command("run " + dir_ + "auto.lnfw --wid 1 --key 1");
  const auto py =
      run_command("run " + dir_ + "auto.lnfw --wid 1 --key 1 --cost python");
  EXPECT_NE(npu.output.find("at npu"), std::string::npos);
  EXPECT_NE(py.output.find("at python"), std::string::npos);
}

TEST_F(CliTest, BadSourceFailsWithDiagnostic) {
  write_file(dir_ + "bad.mc", "int f() { return missing_var; }");
  const auto r = run_command("compile " + dir_ + "bad.mc");
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.output.find("unknown variable"), std::string::npos);
}

TEST_F(CliTest, MissingFileFails) {
  const auto r = run_command("disasm /nonexistent/file.lnfw");
  EXPECT_EQ(r.exit_code, 2);
}

TEST_F(CliTest, UsageOnNoArguments) {
  const auto r = run_command("");
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.output.find("usage"), std::string::npos);
}

}  // namespace
