// Tests for 2PL transactions over the NIC-resident B+-tree store: lock
// table semantics (NO_WAIT aborts, WAIT_DIE wound ordering), end-to-end
// commit/abort behavior, the retry livelock bound, NIC cache coherence,
// and the networked GET/SET/TXN wire path.
#include <gtest/gtest.h>

#include "kvstore/txn.h"
#include "kvstore/workload.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace lnic::kvstore {
namespace {

using net::Packet;
using net::PacketKind;

TxnTimestamp ts(SimTime t, std::uint64_t seq = 0) {
  return TxnTimestamp{t, seq};
}

// ------------------------------------------------------------ LockTable

TEST(LockTableTest, SharedLocksAreCompatible) {
  LockTable table;
  EXPECT_EQ(table.try_acquire(1, 10, LockMode::kShared, ts(1),
                              LockProtocol::kNoWait),
            LockOutcome::kGranted);
  EXPECT_EQ(table.try_acquire(1, 11, LockMode::kShared, ts(2),
                              LockProtocol::kNoWait),
            LockOutcome::kGranted);
  EXPECT_EQ(table.locked_keys(), 1u);
}

TEST(LockTableTest, NoWaitConflictAbortsImmediately) {
  LockTable table;
  ASSERT_EQ(table.try_acquire(1, 10, LockMode::kExclusive, ts(1),
                              LockProtocol::kNoWait),
            LockOutcome::kGranted);
  // Both shared and exclusive requests die on the spot — never kWait.
  EXPECT_EQ(table.try_acquire(1, 11, LockMode::kShared, ts(2),
                              LockProtocol::kNoWait),
            LockOutcome::kAbort);
  EXPECT_EQ(table.try_acquire(1, 11, LockMode::kExclusive, ts(2),
                              LockProtocol::kNoWait),
            LockOutcome::kAbort);
  EXPECT_EQ(table.waiting(), 0u);
}

TEST(LockTableTest, ReentrantAndUpgrade) {
  LockTable table;
  ASSERT_EQ(table.try_acquire(1, 10, LockMode::kShared, ts(1),
                              LockProtocol::kNoWait),
            LockOutcome::kGranted);
  // Re-entrant shared and sole-holder upgrade both succeed.
  EXPECT_EQ(table.try_acquire(1, 10, LockMode::kShared, ts(1),
                              LockProtocol::kNoWait),
            LockOutcome::kGranted);
  EXPECT_EQ(table.try_acquire(1, 10, LockMode::kExclusive, ts(1),
                              LockProtocol::kNoWait),
            LockOutcome::kGranted);
  // The upgrade is real: another shared request now conflicts.
  EXPECT_EQ(table.try_acquire(1, 11, LockMode::kShared, ts(2),
                              LockProtocol::kNoWait),
            LockOutcome::kAbort);
}

TEST(LockTableTest, WaitDieOlderWaitsYoungerDies) {
  LockTable table;
  // Younger txn 20 (ts 5) holds; older txn 10 (ts 1) waits.
  ASSERT_EQ(table.try_acquire(1, 20, LockMode::kExclusive, ts(5),
                              LockProtocol::kWaitDie),
            LockOutcome::kGranted);
  EXPECT_EQ(table.try_acquire(1, 10, LockMode::kExclusive, ts(1),
                              LockProtocol::kWaitDie),
            LockOutcome::kWait);
  EXPECT_EQ(table.waiting(), 1u);
  // An even younger txn 30 (ts 9) dies: blockers include the holder.
  EXPECT_EQ(table.try_acquire(1, 30, LockMode::kExclusive, ts(9),
                              LockProtocol::kWaitDie),
            LockOutcome::kAbort);
  // Release the holder: the waiting older txn is granted, exactly once.
  const std::vector<TxnId> granted = table.release_all(20);
  ASSERT_EQ(granted.size(), 1u);
  EXPECT_EQ(granted[0], 10u);
  // Determinism probe: txn 10 now holds exclusively.
  EXPECT_EQ(table.try_acquire(1, 40, LockMode::kShared, ts(20),
                              LockProtocol::kWaitDie),
            LockOutcome::kAbort);
}

TEST(LockTableTest, WaitDieQueuedWaiterBlocksYoungerRequester) {
  LockTable table;
  // Holder ts 3; waiter ts 1 (older -> waits). A requester with ts 2 is
  // older than the holder but younger than the queued waiter: it must
  // die, otherwise a young->old wait edge could form through the queue.
  ASSERT_EQ(table.try_acquire(1, 30, LockMode::kExclusive, ts(3),
                              LockProtocol::kWaitDie),
            LockOutcome::kGranted);
  ASSERT_EQ(table.try_acquire(1, 10, LockMode::kExclusive, ts(1),
                              LockProtocol::kWaitDie),
            LockOutcome::kWait);
  EXPECT_EQ(table.try_acquire(1, 20, LockMode::kExclusive, ts(2),
                              LockProtocol::kWaitDie),
            LockOutcome::kAbort);
}

TEST(LockTableTest, ReleaseGrantsSharedBatch) {
  LockTable table;
  ASSERT_EQ(table.try_acquire(1, 30, LockMode::kExclusive, ts(9),
                              LockProtocol::kWaitDie),
            LockOutcome::kGranted);
  ASSERT_EQ(table.try_acquire(1, 10, LockMode::kShared, ts(1),
                              LockProtocol::kWaitDie),
            LockOutcome::kWait);
  ASSERT_EQ(table.try_acquire(1, 20, LockMode::kShared, ts(2),
                              LockProtocol::kWaitDie),
            LockOutcome::kWait);
  const std::vector<TxnId> granted = table.release_all(30);
  // Both compatible shared waiters are granted, oldest first.
  ASSERT_EQ(granted.size(), 2u);
  EXPECT_EQ(granted[0], 10u);
  EXPECT_EQ(granted[1], 20u);
  EXPECT_EQ(table.waiting(), 0u);
}

// ------------------------------------------------------------- TxnStore

struct StoreRig {
  sim::Simulator sim;
  net::Network network;
  TxnStore store;

  explicit StoreRig(TxnStoreConfig config = {})
      : network(sim), store(sim, network, config) {}
};

TEST(TxnStoreTest, SingleOpReadCommits) {
  StoreRig rig;
  rig.store.load(5, 55);
  TxnResult result;
  bool done = false;
  TxnRequest req;
  req.ops.push_back({OpKind::kRead, 5, 0, 0});
  rig.store.execute(std::move(req), [&](const TxnResult& r) {
    result = r;
    done = true;
  });
  rig.sim.run();
  ASSERT_TRUE(done);
  EXPECT_EQ(result.status, TxnStatus::kCommitted);
  EXPECT_EQ(result.reads, 1u);
  EXPECT_EQ(result.read_xor, 55u);
  EXPECT_EQ(rig.store.stats().commits, 1u);
  EXPECT_EQ(rig.store.stats().aborts, 0u);
}

TEST(TxnStoreTest, ReadYourWritesAndCommitApplies) {
  StoreRig rig;
  rig.store.load(1, 10);
  bool done = false;
  TxnRequest req;
  req.ops.push_back({OpKind::kWrite, 1, 99, 0});
  req.ops.push_back({OpKind::kRead, 1, 0, 0});  // sees the buffered 99
  rig.store.execute(std::move(req), [&](const TxnResult& r) {
    EXPECT_EQ(r.status, TxnStatus::kCommitted);
    EXPECT_EQ(r.read_xor, 99u);
    done = true;
  });
  rig.sim.run();
  ASSERT_TRUE(done);
  Value v = 0;
  ASSERT_TRUE(rig.store.tree().get(1, &v));
  EXPECT_EQ(v, 99u);  // commit applied the buffered write
}

TEST(TxnStoreTest, AbortedAttemptsLeaveNoPartialWrites) {
  TxnStoreConfig config;
  config.protocol = LockProtocol::kNoWait;
  config.max_retries = 0;  // first conflict is final
  StoreRig rig(config);
  rig.store.load(1, 10);
  rig.store.load(2, 20);

  // Txn A grabs key 1's lock synchronously at submission; txn B then
  // conflicts on key 1, aborts, and must leave both keys A's.
  TxnRequest a;
  a.ops.push_back({OpKind::kWrite, 1, 111, 0});
  a.ops.push_back({OpKind::kWrite, 2, 222, 0});
  TxnRequest b;
  b.ops.push_back({OpKind::kWrite, 1, 999, 0});
  TxnResult rb;
  bool a_done = false, b_done = false;
  rig.store.execute(std::move(a), [&](const TxnResult&) { a_done = true; });
  rig.store.execute(std::move(b), [&](const TxnResult& r) {
    rb = r;
    b_done = true;
  });
  rig.sim.run();
  ASSERT_TRUE(a_done && b_done);
  EXPECT_EQ(rb.status, TxnStatus::kAborted);
  EXPECT_EQ(rig.store.stats().retries_exhausted, 1u);
  Value v = 0;
  ASSERT_TRUE(rig.store.tree().get(1, &v));
  EXPECT_EQ(v, 111u);  // A's value, not B's
  ASSERT_TRUE(rig.store.tree().get(2, &v));
  EXPECT_EQ(v, 222u);
}

TEST(TxnStoreTest, NoWaitContentionRetriesToCommit) {
  TxnStoreConfig config;
  config.protocol = LockProtocol::kNoWait;
  config.max_retries = 64;  // budget is not what's under test here
  StoreRig rig(config);
  for (Key k = 0; k < 8; ++k) rig.store.load(k, 0);

  // 16 concurrent RMW txns over 2 hot keys: heavy conflict, but every
  // one must eventually commit within the retry budget.
  int committed = 0;
  for (int i = 0; i < 16; ++i) {
    TxnRequest req;
    req.ops.push_back({OpKind::kRmw, static_cast<Key>(i % 2), 1, 0});
    req.ops.push_back({OpKind::kRmw, static_cast<Key>((i + 1) % 2), 1, 0});
    rig.store.execute(std::move(req), [&](const TxnResult& r) {
      if (r.status == TxnStatus::kCommitted) ++committed;
    });
  }
  rig.sim.run();
  EXPECT_EQ(committed, 16);
  EXPECT_EQ(rig.store.stats().retries_exhausted, 0u);
  EXPECT_GT(rig.store.stats().aborts, 0u);  // contention really happened
  // Each key was incremented by every txn exactly once.
  Value v0 = 0, v1 = 0;
  rig.store.tree().get(0, &v0);
  rig.store.tree().get(1, &v1);
  EXPECT_EQ(v0, 16u);
  EXPECT_EQ(v1, 16u);
}

TEST(TxnStoreTest, WaitDieLivelockBound) {
  // WAIT_DIE with retained timestamps: an aborted txn ages until it is
  // the oldest contender, so even at maximal conflict every txn finishes
  // well within the retry budget (the livelock bound).
  TxnStoreConfig config;
  config.protocol = LockProtocol::kWaitDie;
  config.max_retries = 32;
  StoreRig rig(config);
  rig.store.load(0, 0);
  rig.store.load(1, 0);

  int committed = 0;
  std::uint32_t max_retries_seen = 0;
  for (int i = 0; i < 24; ++i) {
    TxnRequest req;
    // Opposite lock orders — the classic deadlock shape.
    req.ops.push_back({OpKind::kRmw, static_cast<Key>(i % 2), 1, 0});
    req.ops.push_back({OpKind::kRmw, static_cast<Key>(1 - i % 2), 1, 0});
    rig.store.execute(std::move(req), [&](const TxnResult& r) {
      if (r.status == TxnStatus::kCommitted) ++committed;
      max_retries_seen = std::max(max_retries_seen, r.retries);
    });
  }
  rig.sim.run();  // termination itself proves deadlock freedom
  EXPECT_EQ(committed, 24);
  EXPECT_EQ(rig.store.stats().retries_exhausted, 0u);
  EXPECT_LT(max_retries_seen, 32u);
  Value v0 = 0, v1 = 0;
  rig.store.tree().get(0, &v0);
  rig.store.tree().get(1, &v1);
  EXPECT_EQ(v0 + v1, 48u);
}

TEST(TxnStoreTest, WaitDieWaitsAreRecorded) {
  TxnStoreConfig config;
  config.protocol = LockProtocol::kWaitDie;
  StoreRig rig(config);
  rig.store.load(0, 0);
  int committed = 0;
  for (int i = 0; i < 8; ++i) {
    TxnRequest req;
    req.ops.push_back({OpKind::kRmw, 0, 1, 0});
    rig.store.execute(std::move(req), [&](const TxnResult& r) {
      if (r.status == TxnStatus::kCommitted) ++committed;
    });
  }
  rig.sim.run();
  EXPECT_EQ(committed, 8);
  Value v = 0;
  rig.store.tree().get(0, &v);
  EXPECT_EQ(v, 8u);
  // Single-key RMW pile-up under WAIT_DIE: older txns waited in line.
  EXPECT_GT(rig.store.stats().lock_waits, 0u);
}

TEST(TxnStoreTest, CacheHitsWarmUpAndWritebackInvalidates) {
  TxnStoreConfig config;
  config.nic_cache_nodes = 64;
  StoreRig rig(config);
  for (Key k = 0; k < 64; ++k) rig.store.load(k, k);

  auto read_key = [&](Key k) {
    TxnRequest req;
    req.ops.push_back({OpKind::kRead, k, 0, 0});
    rig.store.execute(std::move(req), [](const TxnResult&) {});
    rig.sim.run();
  };
  read_key(7);
  const auto cold = rig.store.cache_stats();
  EXPECT_GT(cold.misses, 0u);
  EXPECT_EQ(cold.hits, 0u);
  read_key(7);  // same path again: every page is now resident
  const auto warm = rig.store.cache_stats();
  EXPECT_EQ(warm.misses, cold.misses);
  EXPECT_GT(warm.hits, 0u);

  // A committed write to key 7's leaf invalidates the cached page...
  TxnRequest w;
  w.ops.push_back({OpKind::kWrite, 7, 1, 0});
  rig.store.execute(std::move(w), [](const TxnResult&) {});
  rig.sim.run();
  EXPECT_GT(rig.store.cache_stats().invalidations, 0u);
  // ...so the next read of the same path misses again (re-fetch).
  const auto before = rig.store.cache_stats();
  read_key(7);
  EXPECT_GT(rig.store.cache_stats().misses, before.misses);
}

TEST(TxnStoreTest, HostBaselineNeverCaches) {
  TxnStoreConfig config;
  config.nic_cache_nodes = 0;
  StoreRig rig(config);
  for (Key k = 0; k < 16; ++k) rig.store.load(k, k);
  for (int round = 0; round < 3; ++round) {
    TxnRequest req;
    req.ops.push_back({OpKind::kRead, 3, 0, 0});
    rig.store.execute(std::move(req), [](const TxnResult&) {});
    rig.sim.run();
  }
  EXPECT_EQ(rig.store.cache_stats().hits, 0u);
  EXPECT_GT(rig.store.cache_stats().misses, 0u);
  EXPECT_GT(rig.store.host_stats().reads, 0u);  // every page over RDMA
}

TEST(TxnStoreTest, NetworkedGetSetAndTxnWirePath) {
  StoreRig rig;
  rig.store.load(40, 4000);

  std::vector<Packet> replies;
  const NodeId client = rig.network.attach(
      [&](const Packet& p) {
        if (p.kind == PacketKind::kKvResponse) replies.push_back(p);
      },
      &rig.sim);

  auto send = [&](WorkloadId op, std::vector<std::uint8_t> body,
                  RequestId token) {
    Packet p;
    p.src = client;
    p.dst = rig.store.node();
    p.kind = PacketKind::kKvRequest;
    p.lambda.workload_id = op;
    p.lambda.request_id = token;
    p.payload = std::move(body);
    rig.network.send(std::move(p));
  };
  auto u64le = [](std::uint64_t a, std::uint64_t b) {
    std::vector<std::uint8_t> body(16);
    for (int i = 0; i < 8; ++i) {
      body[i] = static_cast<std::uint8_t>(a >> (8 * i));
      body[8 + i] = static_cast<std::uint8_t>(b >> (8 * i));
    }
    return body;
  };

  send(TxnStore::kOpGet, u64le(40, 0), 1);
  send(TxnStore::kOpSet, u64le(41, 4100), 2);
  TxnRequest txn;
  txn.ops.push_back({OpKind::kRead, 40, 0, 0});
  txn.ops.push_back({OpKind::kRmw, 41, 1, 0});
  send(TxnStore::kOpTxn, TxnStore::encode_txn(txn), 3);
  rig.sim.run();

  ASSERT_EQ(replies.size(), 3u);
  EXPECT_EQ(rig.store.stats().gets, 1u);
  EXPECT_EQ(rig.store.stats().sets, 1u);
  EXPECT_EQ(rig.store.stats().txns, 1u);
  auto value_of = [](const Packet& p, std::size_t at) {
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < 8 && at + i < p.payload.size(); ++i) {
      v |= static_cast<std::uint64_t>(p.payload[at + i]) << (8 * i);
    }
    return v;
  };
  for (const Packet& p : replies) {
    switch (p.lambda.request_id) {
      case 1:  // GET 40 -> 4000
        EXPECT_EQ(value_of(p, 0), 4000u);
        break;
      case 2:  // SET echoes the written value
        EXPECT_EQ(value_of(p, 0), 4100u);
        break;
      case 3: {  // TXN reply [status][retries][reads u16][xor u64]
        ASSERT_EQ(p.payload.size(), 12u);
        EXPECT_EQ(p.payload[0],
                  static_cast<std::uint8_t>(TxnStatus::kCommitted));
        EXPECT_EQ(p.payload[2], 2u);  // two values read
        EXPECT_EQ(value_of(p, 4), 4000ull ^ 4100ull);
        break;
      }
      default:
        FAIL() << "unexpected reply token";
    }
  }
  // The TXN's RMW really incremented key 41.
  Value v = 0;
  ASSERT_TRUE(rig.store.tree().get(41, &v));
  EXPECT_EQ(v, 4101u);
}

// ------------------------------------------------------------ Workloads

TEST(WorkloadTest, YcsbMixShapes) {
  for (const YcsbMix mix : {YcsbMix::kA, YcsbMix::kB, YcsbMix::kC,
                            YcsbMix::kD, YcsbMix::kE, YcsbMix::kF}) {
    YcsbConfig config;
    config.mix = mix;
    config.records = 1 << 10;
    config.seed = 7;
    YcsbWorkload workload(config);
    std::uint64_t reads = 0, writes = 0, scans = 0, inserts = 0, rmws = 0;
    for (int i = 0; i < 500; ++i) {
      for (const TxnOp& op : workload.next().ops) {
        switch (op.kind) {
          case OpKind::kRead: ++reads; break;
          case OpKind::kWrite: ++writes; break;
          case OpKind::kScan: ++scans; break;
          case OpKind::kInsert: ++inserts; break;
          case OpKind::kRmw: ++rmws; break;
          case OpKind::kRemove: break;
        }
      }
    }
    switch (mix) {
      case YcsbMix::kA:
        EXPECT_GT(reads, 0u);
        EXPECT_GT(writes, reads / 2);  // ~50/50
        break;
      case YcsbMix::kB:
        EXPECT_GT(reads, writes * 8);  // ~95/5
        break;
      case YcsbMix::kC:
        EXPECT_EQ(writes + scans + inserts + rmws, 0u);
        break;
      case YcsbMix::kD:
        EXPECT_GT(reads, 0u);
        EXPECT_GT(inserts, 0u);
        break;
      case YcsbMix::kE:
        EXPECT_GT(scans, 0u);
        EXPECT_GT(inserts, 0u);
        break;
      case YcsbMix::kF:
        EXPECT_GT(rmws, reads / 4);  // ~50/50 read/RMW
        break;
    }
  }
}

TEST(WorkloadTest, YcsbIsDeterministicPerSeed) {
  YcsbConfig config;
  config.mix = YcsbMix::kA;
  config.seed = 99;
  YcsbWorkload a(config), b(config);
  for (int i = 0; i < 100; ++i) {
    const TxnRequest ra = a.next(), rb = b.next();
    ASSERT_EQ(ra.ops.size(), rb.ops.size());
    for (std::size_t j = 0; j < ra.ops.size(); ++j) {
      EXPECT_EQ(ra.ops[j].kind, rb.ops[j].kind);
      EXPECT_EQ(ra.ops[j].key, rb.ops[j].key);
      EXPECT_EQ(ra.ops[j].value, rb.ops[j].value);
    }
  }
}

TEST(WorkloadTest, TpccNewOrderShape) {
  TpccLiteConfig config;
  config.warehouses = 2;
  TpccLiteWorkload workload(config);
  StoreRig rig;
  workload.populate(&rig.store);
  EXPECT_GT(rig.store.tree().size(), config.items);
  for (int i = 0; i < 50; ++i) {
    const TxnRequest req = workload.next_order();
    // 1 district RMW + (read+RMW) per line + 1 order insert.
    ASSERT_GE(req.ops.size(), 1u + 2u * 5u + 1u);
    ASSERT_LE(req.ops.size(), 1u + 2u * 15u + 1u);
    EXPECT_EQ(req.ops.front().kind, OpKind::kRmw);
    EXPECT_EQ(req.ops.back().kind, OpKind::kInsert);
  }
}

TEST(WorkloadTest, TpccNewOrdersAllCommitSingleClient) {
  TpccLiteConfig config;
  config.warehouses = 1;
  TpccLiteWorkload workload(config);
  TxnStoreConfig store_config;
  store_config.max_retries = 64;  // 20 concurrent new-orders, 10 districts
  StoreRig rig(store_config);
  workload.populate(&rig.store);
  int committed = 0;
  for (int i = 0; i < 20; ++i) {
    rig.store.execute(workload.next_order(), [&](const TxnResult& r) {
      if (r.status == TxnStatus::kCommitted) ++committed;
    });
  }
  rig.sim.run();
  EXPECT_EQ(committed, 20);
  EXPECT_EQ(rig.store.stats().retries_exhausted, 0u);
}

}  // namespace
}  // namespace lnic::kvstore
