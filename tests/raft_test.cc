// Raft safety and liveness tests: election safety, log replication,
// leader failover, partitions, and a seed-swept property run under
// message loss (the invariants DESIGN.md §6 lists).
#include <gtest/gtest.h>

#include <set>

#include "raft/raft.h"
#include "sim/simulator.h"

namespace lnic::raft {
namespace {

Command put(const std::string& k, const std::string& v) {
  return Command{Command::Op::kPut, k, v};
}

// Counts live leaders per term across the cluster.
std::map<std::uint64_t, int> leaders_by_term(Cluster& cluster) {
  std::map<std::uint64_t, int> counts;
  for (NodeIndex i = 0; i < cluster.size(); ++i) {
    auto& node = cluster.node(i);
    if (node.running() && node.role() == Role::kLeader) {
      counts[node.current_term()]++;
    }
  }
  return counts;
}

TEST(Raft, ElectsExactlyOneLeader) {
  sim::Simulator sim;
  Cluster cluster(sim, 3);
  cluster.start();
  sim.run_until(seconds(2));
  RaftNode* leader = cluster.leader();
  ASSERT_NE(leader, nullptr);
  for (const auto& [term, count] : leaders_by_term(cluster)) {
    (void)term;
    EXPECT_LE(count, 1);
  }
}

TEST(Raft, SingleNodeClusterLeadsImmediately) {
  sim::Simulator sim;
  Cluster cluster(sim, 1);
  cluster.start();
  sim.run_until(seconds(1));
  ASSERT_NE(cluster.leader(), nullptr);
  auto result = cluster.leader()->propose(put("k", "v"));
  ASSERT_TRUE(result.ok());
  sim.run_until(seconds(2));
  EXPECT_EQ(cluster.node(0).commit_index(), 1u);
}

TEST(Raft, ReplicatesAndCommitsEntries) {
  sim::Simulator sim;
  Cluster cluster(sim, 5);
  cluster.start();
  sim.run_until(seconds(2));
  RaftNode* leader = cluster.leader();
  ASSERT_NE(leader, nullptr);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(leader->propose(put("k" + std::to_string(i), "v")).ok());
  }
  sim.run_until(seconds(4));
  for (NodeIndex i = 0; i < cluster.size(); ++i) {
    EXPECT_EQ(cluster.node(i).commit_index(), 10u) << "node " << i;
    EXPECT_EQ(cluster.node(i).log().size(), 10u);
  }
}

TEST(Raft, AppliesInOrderExactlyOnce) {
  sim::Simulator sim;
  Cluster cluster(sim, 3);
  std::vector<std::string> applied;
  cluster.node(0).set_apply_callback(
      [&](std::uint64_t, const Command& c) { applied.push_back(c.key); });
  cluster.start();
  sim.run_until(seconds(2));
  RaftNode* leader = cluster.leader();
  ASSERT_NE(leader, nullptr);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(leader->propose(put(std::to_string(i), "v")).ok());
  }
  sim.run_until(seconds(4));
  ASSERT_EQ(applied.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(applied[i], std::to_string(i));
}

TEST(Raft, FollowerRejectsProposals) {
  sim::Simulator sim;
  Cluster cluster(sim, 3);
  cluster.start();
  sim.run_until(seconds(2));
  RaftNode* leader = cluster.leader();
  ASSERT_NE(leader, nullptr);
  for (NodeIndex i = 0; i < cluster.size(); ++i) {
    if (&cluster.node(i) != leader) {
      EXPECT_FALSE(cluster.node(i).propose(put("k", "v")).ok());
    }
  }
}

TEST(Raft, ReelectsAfterLeaderCrash) {
  sim::Simulator sim;
  Cluster cluster(sim, 5);
  cluster.start();
  sim.run_until(seconds(2));
  RaftNode* first = cluster.leader();
  ASSERT_NE(first, nullptr);
  ASSERT_TRUE(first->propose(put("before", "crash")).ok());
  sim.run_until(seconds(3));
  const NodeIndex dead = first->index();
  first->stop();
  sim.run_until(seconds(6));
  RaftNode* second = cluster.leader();
  ASSERT_NE(second, nullptr);
  EXPECT_NE(second->index(), dead);
  // Committed entry survives the failover (leader completeness).
  ASSERT_TRUE(second->propose(put("after", "crash")).ok());
  sim.run_until(seconds(9));
  EXPECT_GE(second->commit_index(), 2u);
  EXPECT_EQ(second->log()[0].command.key, "before");
}

TEST(Raft, MinorityPartitionCannotCommit) {
  sim::Simulator sim;
  Cluster cluster(sim, 5);
  cluster.start();
  sim.run_until(seconds(2));
  RaftNode* leader = cluster.leader();
  ASSERT_NE(leader, nullptr);
  const NodeIndex lead = leader->index();
  // Cut the leader plus one follower off from the other three.
  const NodeIndex buddy = (lead + 1) % 5;
  for (NodeIndex i = 0; i < 5; ++i) {
    if (i == lead || i == buddy) continue;
    cluster.transport().set_link(lead, i, false);
    cluster.transport().set_link(buddy, i, false);
  }
  ASSERT_TRUE(leader->propose(put("stuck", "entry")).ok());
  sim.run_until(seconds(5));
  EXPECT_EQ(leader->commit_index(), 0u);  // minority: cannot commit
  // The majority side elects a fresh leader that can commit.
  RaftNode* majority_leader = nullptr;
  for (NodeIndex i = 0; i < 5; ++i) {
    if (i == lead || i == buddy) continue;
    if (cluster.node(i).role() == Role::kLeader) {
      majority_leader = &cluster.node(i);
    }
  }
  ASSERT_NE(majority_leader, nullptr);
  ASSERT_TRUE(majority_leader->propose(put("fresh", "entry")).ok());
  sim.run_until(seconds(8));
  EXPECT_GE(majority_leader->commit_index(), 1u);
}

TEST(Raft, RestartedNodeCatchesUp) {
  sim::Simulator sim;
  Cluster cluster(sim, 3);
  cluster.start();
  sim.run_until(seconds(2));
  RaftNode* leader = cluster.leader();
  ASSERT_NE(leader, nullptr);
  NodeIndex victim = (leader->index() + 1) % 3;
  cluster.node(victim).stop();
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(leader->propose(put("k" + std::to_string(i), "v")).ok());
  }
  sim.run_until(seconds(4));
  cluster.node(victim).restart();
  sim.run_until(seconds(8));
  EXPECT_EQ(cluster.node(victim).commit_index(),
            cluster.leader()->commit_index());
}

TEST(Raft, TermsNeverDecrease) {
  sim::Simulator sim;
  Cluster cluster(sim, 3);
  cluster.start();
  std::uint64_t max_term = 0;
  for (int round = 0; round < 20; ++round) {
    sim.run_until(sim.now() + milliseconds(300));
    for (NodeIndex i = 0; i < 3; ++i) {
      EXPECT_GE(cluster.node(i).current_term() + 1, max_term)
          << "node " << i;  // each node's term is monotone overall
      max_term = std::max(max_term, cluster.node(i).current_term());
    }
    // Periodically disturb the cluster.
    if (round == 5) cluster.node(cluster.leader()->index()).stop();
    if (round == 10) {
      for (NodeIndex i = 0; i < 3; ++i) {
        if (!cluster.node(i).running()) cluster.node(i).restart();
      }
    }
  }
}

TEST(Raft, StopIsIdempotentAndQuiet) {
  sim::Simulator sim;
  Cluster cluster(sim, 3);
  cluster.start();
  sim.run_until(seconds(2));
  RaftNode* leader = cluster.leader();
  ASSERT_NE(leader, nullptr);
  leader->stop();
  leader->stop();  // double stop must be safe
  EXPECT_FALSE(leader->running());
  EXPECT_FALSE(leader->propose(put("k", "v")).ok());
  // A stopped node ignores traffic entirely.
  sim.run_until(seconds(4));
  EXPECT_EQ(leader->role(), Role::kFollower);
}

TEST(Raft, FiveNodeClusterSurvivesTwoCrashes) {
  sim::Simulator sim;
  Cluster cluster(sim, 5);
  cluster.start();
  sim.run_until(seconds(2));
  ASSERT_NE(cluster.leader(), nullptr);
  // Crash two followers: a majority (3/5) remains, commits continue.
  int crashed = 0;
  for (NodeIndex i = 0; i < 5 && crashed < 2; ++i) {
    if (cluster.node(i).role() != Role::kLeader) {
      cluster.node(i).stop();
      ++crashed;
    }
  }
  sim.run_until(seconds(4));
  RaftNode* leader = cluster.leader();
  ASSERT_NE(leader, nullptr);
  ASSERT_TRUE(leader->propose(put("still", "alive")).ok());
  sim.run_until(seconds(6));
  EXPECT_GE(leader->commit_index(), 1u);
}

TEST(Raft, HealedPartitionConvergesOnOneLog) {
  sim::Simulator sim;
  Cluster cluster(sim, 5);
  cluster.start();
  sim.run_until(seconds(2));
  RaftNode* old_leader = cluster.leader();
  ASSERT_NE(old_leader, nullptr);
  const NodeIndex lead = old_leader->index();
  // Isolate the leader alone; it may keep accepting (uncommittable)
  // proposals while the majority elects a new leader and commits.
  for (NodeIndex i = 0; i < 5; ++i) {
    if (i != lead) cluster.transport().set_link(lead, i, false);
  }
  (void)old_leader->propose(put("doomed", "entry"));
  sim.run_until(seconds(5));
  RaftNode* new_leader = cluster.leader();
  ASSERT_NE(new_leader, nullptr);
  ASSERT_NE(new_leader->index(), lead);
  ASSERT_TRUE(new_leader->propose(put("committed", "entry")).ok());
  sim.run_until(seconds(7));
  // Heal: the old leader must discard its uncommitted entry and adopt
  // the majority's log (log matching + leader completeness).
  for (NodeIndex i = 0; i < 5; ++i) {
    if (i != lead) cluster.transport().set_link(lead, i, true);
  }
  sim.run_until(seconds(10));
  const auto& healed_log = cluster.node(lead).log();
  bool has_doomed = false;
  for (std::uint64_t idx = 1; idx <= cluster.node(lead).commit_index();
       ++idx) {
    if (healed_log[idx - 1].command.key == "doomed") has_doomed = true;
  }
  EXPECT_FALSE(has_doomed);
}

// Property sweep: under 10% message loss and random seeds, the cluster
// still elects a single leader per term and commits entries; logs agree
// on every committed prefix (state-machine safety).
class RaftLossyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RaftLossyTest, SafetyUnderMessageLoss) {
  sim::Simulator sim;
  RaftConfig config;
  config.seed = GetParam();
  Cluster cluster(sim, 5, config, microseconds(200), /*drop=*/0.10,
                  GetParam() * 31 + 1);
  cluster.start();
  // Propose periodically from whoever currently leads.
  int proposed = 0;
  for (int round = 0; round < 40; ++round) {
    sim.run_until(sim.now() + milliseconds(200));
    if (RaftNode* leader = cluster.leader()) {
      if (leader->propose(put("k" + std::to_string(round), "v")).ok()) {
        ++proposed;
      }
    }
    for (const auto& [term, count] : leaders_by_term(cluster)) {
      (void)term;
      ASSERT_LE(count, 1) << "two leaders in one term";
    }
  }
  sim.run_until(sim.now() + seconds(3));
  ASSERT_GT(proposed, 0);
  // Committed prefixes agree across all nodes.
  std::uint64_t min_commit = UINT64_MAX;
  for (NodeIndex i = 0; i < 5; ++i) {
    min_commit = std::min(min_commit, cluster.node(i).commit_index());
  }
  EXPECT_GT(min_commit, 0u);
  for (std::uint64_t idx = 1; idx <= min_commit; ++idx) {
    const auto& reference = cluster.node(0).log()[idx - 1];
    for (NodeIndex i = 1; i < 5; ++i) {
      ASSERT_EQ(cluster.node(i).log()[idx - 1].term, reference.term);
      ASSERT_EQ(cluster.node(i).log()[idx - 1].command, reference.command);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RaftLossyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace lnic::raft
