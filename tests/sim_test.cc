// Tests for the discrete-event engine: ordering, cancellation, timers,
// the ServerPool resource, and determinism properties.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/types.h"
#include "sim/resource.h"
#include "sim/simulator.h"

namespace lnic::sim {
namespace {

TEST(Simulator, DispatchesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(30, [&] { order.push_back(3); });
  sim.schedule(10, [&] { order.push_back(1); });
  sim.schedule(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, FifoAmongSameTimeEvents) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(5, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, NestedSchedulingAdvancesClock) {
  Simulator sim;
  SimTime inner_time = -1;
  sim.schedule(100, [&] {
    sim.schedule(50, [&] { inner_time = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(inner_time, 150);
}

TEST(Simulator, CancelPreventsDispatch) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.schedule(10, [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // double-cancel reports false
  sim.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, RunUntilLeavesLaterEventsPending) {
  Simulator sim;
  int count = 0;
  sim.schedule(10, [&] { ++count; });
  sim.schedule(20, [&] { ++count; });
  sim.schedule(30, [&] { ++count; });
  sim.run_until(20);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.now(), 20);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(count, 3);
}

TEST(Simulator, RunUntilAdvancesClockWhenIdle) {
  Simulator sim;
  sim.run_until(500);
  EXPECT_EQ(sim.now(), 500);
}

TEST(Simulator, StepRunsExactlyOne) {
  Simulator sim;
  int count = 0;
  sim.schedule(1, [&] { ++count; });
  sim.schedule(2, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(count, 2);
}

TEST(Simulator, ZeroDelayRunsAtCurrentTime) {
  Simulator sim;
  sim.schedule(10, [&] {
    sim.schedule(0, [&] { EXPECT_EQ(sim.now(), 10); });
  });
  sim.run();
}

TEST(PeriodicTimer, FiresUntilStopped) {
  Simulator sim;
  int fires = 0;
  PeriodicTimer timer(sim, 100, [&] { ++fires; });
  timer.start();
  sim.run_until(1000);
  EXPECT_EQ(fires, 10);
  timer.stop();
  sim.run_until(2000);
  EXPECT_EQ(fires, 10);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(ServerPool, SingleServerSerializesJobs) {
  Simulator sim;
  ServerPool pool(sim, 1);
  std::vector<SimTime> completions;
  for (int i = 0; i < 3; ++i) {
    pool.submit(100, [&] { completions.push_back(sim.now()); });
  }
  sim.run();
  EXPECT_EQ(completions, (std::vector<SimTime>{100, 200, 300}));
  EXPECT_EQ(pool.completed(), 3u);
  EXPECT_EQ(pool.busy_time(), 300);
}

TEST(ServerPool, ParallelServersOverlap) {
  Simulator sim;
  ServerPool pool(sim, 4);
  std::vector<SimTime> completions;
  for (int i = 0; i < 4; ++i) {
    pool.submit(100, [&] { completions.push_back(sim.now()); });
  }
  sim.run();
  for (SimTime t : completions) EXPECT_EQ(t, 100);
}

TEST(ServerPool, QueueingDelayRecorded) {
  Simulator sim;
  ServerPool pool(sim, 1);
  pool.submit(100);
  pool.submit(100);
  sim.run();
  ASSERT_EQ(pool.wait_samples().count(), 2u);
  EXPECT_DOUBLE_EQ(pool.wait_samples().samples()[0], 0.0);
  EXPECT_DOUBLE_EQ(pool.wait_samples().samples()[1], 100.0);
}

// Property: with k servers and n identical jobs, makespan = ceil(n/k)*s.
class PoolMakespanTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PoolMakespanTest, MakespanMatchesTheory) {
  const auto [servers, jobs] = GetParam();
  Simulator sim;
  ServerPool pool(sim, static_cast<std::uint32_t>(servers));
  const SimDuration service = 50;
  for (int i = 0; i < jobs; ++i) pool.submit(service);
  sim.run();
  const SimTime expected = ((jobs + servers - 1) / servers) * service;
  EXPECT_EQ(sim.now(), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PoolMakespanTest,
    ::testing::Combine(::testing::Values(1, 2, 7, 56),
                       ::testing::Values(1, 8, 100)));

// --- Engine edge cases: arena recycling, cancellation corners, wheel ---

TEST(Simulator, CancelInsideRunningHandler) {
  Simulator sim;
  bool victim_ran = false;
  const EventId victim = sim.schedule(20, [&] { victim_ran = true; });
  sim.schedule(10, [&] { EXPECT_TRUE(sim.cancel(victim)); });
  sim.run();
  EXPECT_FALSE(victim_ran);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, CancelAfterFireReturnsFalse) {
  Simulator sim;
  const EventId id = sim.schedule(5, [] {});
  sim.run();
  EXPECT_FALSE(sim.cancel(id));
}

TEST(Simulator, SelfCancelInsideHandlerReturnsFalse) {
  // The slot is retired before the closure runs, so an event that tries
  // to cancel itself learns (correctly) that it already fired.
  Simulator sim;
  EventId self = kInvalidEvent;
  bool cancel_result = true;
  self = sim.schedule(5, [&] { cancel_result = sim.cancel(self); });
  sim.run();
  EXPECT_FALSE(cancel_result);
}

TEST(Simulator, SlotRecyclingKeepsArenaSmall) {
  // Schedule/dispatch churn far larger than the in-flight set must not
  // grow the arena: freed slots are recycled through the free list.
  Simulator sim;
  int live = 0;
  for (int round = 0; round < 1000; ++round) {
    for (int i = 0; i < 8; ++i) {
      sim.schedule(i, [&] { ++live; });
    }
    sim.run();
  }
  EXPECT_EQ(live, 8000);
  EXPECT_LE(sim.arena_slots(), 8u);
}

TEST(Simulator, StaleIdCannotCancelRecycledSlot) {
  // After an event fires, its slot is reused by a new event; the old
  // EventId carries a stale generation and must not cancel the newcomer.
  Simulator sim;
  const EventId old_id = sim.schedule(1, [] {});
  sim.run();
  bool ran = false;
  const EventId new_id = sim.schedule(1, [&] { ran = true; });
  // Same slot, different generation.
  EXPECT_EQ(old_id >> 32, new_id >> 32);
  EXPECT_NE(old_id, new_id);
  EXPECT_FALSE(sim.cancel(old_id));
  sim.run();
  EXPECT_TRUE(ran);
}

TEST(Simulator, PendingTracksLiveEventsExactly) {
  Simulator sim;
  EXPECT_EQ(sim.pending(), 0u);
  const EventId a = sim.schedule(10, [] {});
  sim.schedule(20, [] {});
  EXPECT_EQ(sim.pending(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending(), 1u);  // cancelled events leave immediately
  sim.step();
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, RunUntilIncludesEventAtExactDeadline) {
  Simulator sim;
  int count = 0;
  sim.schedule(100, [&] { ++count; });
  sim.schedule(101, [&] { ++count; });
  EXPECT_EQ(sim.run_until(100), 1u);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sim.now(), 100);
}

TEST(Simulator, FarFutureEventsCrossWheelHorizon) {
  // Events beyond the wheel horizon (~8.4 ms) park in the overflow heap
  // and must still fire in exact (time, seq) order as time advances.
  Simulator sim;
  std::vector<int> order;
  sim.schedule(seconds(10), [&] { order.push_back(3); });
  sim.schedule(milliseconds(100), [&] { order.push_back(2); });
  sim.schedule(microseconds(5), [&] { order.push_back(1); });
  sim.schedule(seconds(10), [&] { order.push_back(4); });  // FIFO tie
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(sim.now(), seconds(10));
}

TEST(Simulator, ScheduleAfterLongIdleRunUntil) {
  // run_until far past all events re-bases the wheel; later schedules
  // (relative to the new now()) must land correctly.
  Simulator sim;
  int count = 0;
  sim.schedule(10, [&] { ++count; });
  sim.run_until(seconds(60));
  EXPECT_EQ(sim.now(), seconds(60));
  sim.schedule(5, [&] { ++count; });
  sim.schedule(seconds(30), [&] { ++count; });
  sim.run();
  EXPECT_EQ(count, 3);
  EXPECT_EQ(sim.now(), seconds(90));
}

TEST(Simulator, DrainedRunThenFarTimerCancelledThenNearSchedule) {
  // Regression for the wheel-rebase path: run() drains everything, the
  // only surviving structure state points far ahead, then a cancel
  // empties it and a near-term schedule must re-base cleanly.
  Simulator sim;
  sim.schedule(1, [] {});
  const EventId far = sim.schedule(seconds(5), [] {});
  sim.run_until(10);
  EXPECT_TRUE(sim.cancel(far));
  sim.run();  // drains the cancelled stale entry, wheel may sit ahead
  bool ran = false;
  sim.schedule(1, [&] { ran = true; });
  sim.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.now(), 11);
}

TEST(Simulator, HandlerSchedulingZeroDelayPreservesFifo) {
  // Zero-delay schedules from inside a handler land in the tick being
  // drained and must interleave in exact (time, seq) order.
  Simulator sim;
  std::vector<int> order;
  sim.schedule(10, [&] {
    order.push_back(0);
    sim.schedule(0, [&] { order.push_back(2); });
  });
  sim.schedule(10, [&] { order.push_back(1); });
  sim.schedule(11, [&] { order.push_back(3); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(Simulator, ChurnAcrossGenerationsStaysCorrect) {
  // Heavy schedule/cancel churn on a small slot set exercises generation
  // wraparound-adjacent logic: no stale id may ever cancel a live event.
  Simulator sim;
  int fired = 0;
  std::vector<EventId> history;
  for (int round = 0; round < 500; ++round) {
    const EventId keep = sim.schedule(1, [&] { ++fired; });
    const EventId drop = sim.schedule(2, [] { FAIL(); });
    EXPECT_TRUE(sim.cancel(drop));
    for (const EventId stale : history) EXPECT_FALSE(sim.cancel(stale));
    history.clear();
    history.push_back(keep);
    history.push_back(drop);
    sim.run();
  }
  EXPECT_EQ(fired, 500);
  EXPECT_LE(sim.arena_slots(), 2u);
}

TEST(PeriodicTimer, DestructorCancelsPendingCallback) {
  // Regression: a started timer going out of scope used to leave its
  // rearm closure queued with a dangling `this`. The destructor must
  // stop() so the simulator never fires into a dead timer.
  Simulator sim;
  int fires = 0;
  {
    PeriodicTimer timer(sim, 100, [&] { ++fires; });
    timer.start();
    sim.run_until(250);
    EXPECT_EQ(fires, 2);
  }  // destroyed while armed
  EXPECT_EQ(sim.pending(), 0u);
  sim.run_until(seconds(1));  // would crash / fire into freed memory
  EXPECT_EQ(fires, 2);
}

// --- InlineFn: the engine's small-buffer callable ---

TEST(InlineFn, InvokesInlineCapture) {
  int hits = 0;
  InlineFn<128> fn([&hits] { ++hits; });
  EXPECT_TRUE(static_cast<bool>(fn));
  fn();
  fn();
  EXPECT_EQ(hits, 2);
}

TEST(InlineFn, MoveTransfersOwnership) {
  int hits = 0;
  InlineFn<128> a([&hits] { ++hits; });
  InlineFn<128> b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));
  b();
  EXPECT_EQ(hits, 1);
}

TEST(InlineFn, HoldsMoveOnlyCapture) {
  auto owned = std::make_unique<int>(41);
  InlineFn<128> fn([p = std::move(owned)] { ++*p; });
  fn();
  InlineFn<128> moved(std::move(fn));
  moved();
}

TEST(InlineFn, HeapFallbackForOversizedCapture) {
  struct Big {
    std::uint64_t words[64] = {};  // 512 bytes > Capacity
  };
  Big big;
  big.words[0] = 7;
  std::uint64_t seen = 0;
  InlineFn<128> fn([big, &seen] { seen = big.words[0]; });
  InlineFn<128> moved(std::move(fn));
  moved();
  EXPECT_EQ(seen, 7u);
}

TEST(InlineFn, AssignReplacesHeldCallable) {
  int first = 0, second = 0;
  InlineFn<128> fn([&first] { ++first; });
  fn();
  fn.assign([&second] { ++second; });
  fn();
  EXPECT_EQ(first, 1);
  EXPECT_EQ(second, 1);
}

TEST(InlineFn, DestroysCaptureExactlyOnce) {
  struct Probe {
    int* count;
    explicit Probe(int* c) : count(c) {}
    Probe(Probe&& o) noexcept : count(o.count) { o.count = nullptr; }
    Probe(const Probe&) = delete;
    ~Probe() {
      if (count != nullptr) ++*count;
    }
    void operator()() {}
  };
  int destroyed = 0;
  {
    InlineFn<128> fn{Probe(&destroyed)};
    InlineFn<128> moved(std::move(fn));
    moved();
  }
  EXPECT_EQ(destroyed, 1);
}

}  // namespace
}  // namespace lnic::sim
