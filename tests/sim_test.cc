// Tests for the discrete-event engine: ordering, cancellation, timers,
// the ServerPool resource, and determinism properties.
#include <gtest/gtest.h>

#include <vector>

#include "common/types.h"
#include "sim/resource.h"
#include "sim/simulator.h"

namespace lnic::sim {
namespace {

TEST(Simulator, DispatchesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(30, [&] { order.push_back(3); });
  sim.schedule(10, [&] { order.push_back(1); });
  sim.schedule(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(Simulator, FifoAmongSameTimeEvents) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule(5, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, NestedSchedulingAdvancesClock) {
  Simulator sim;
  SimTime inner_time = -1;
  sim.schedule(100, [&] {
    sim.schedule(50, [&] { inner_time = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(inner_time, 150);
}

TEST(Simulator, CancelPreventsDispatch) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.schedule(10, [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(id));
  EXPECT_FALSE(sim.cancel(id));  // double-cancel reports false
  sim.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(Simulator, RunUntilLeavesLaterEventsPending) {
  Simulator sim;
  int count = 0;
  sim.schedule(10, [&] { ++count; });
  sim.schedule(20, [&] { ++count; });
  sim.schedule(30, [&] { ++count; });
  sim.run_until(20);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.now(), 20);
  EXPECT_EQ(sim.pending(), 1u);
  sim.run();
  EXPECT_EQ(count, 3);
}

TEST(Simulator, RunUntilAdvancesClockWhenIdle) {
  Simulator sim;
  sim.run_until(500);
  EXPECT_EQ(sim.now(), 500);
}

TEST(Simulator, StepRunsExactlyOne) {
  Simulator sim;
  int count = 0;
  sim.schedule(1, [&] { ++count; });
  sim.schedule(2, [&] { ++count; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(count, 2);
}

TEST(Simulator, ZeroDelayRunsAtCurrentTime) {
  Simulator sim;
  sim.schedule(10, [&] {
    sim.schedule(0, [&] { EXPECT_EQ(sim.now(), 10); });
  });
  sim.run();
}

TEST(PeriodicTimer, FiresUntilStopped) {
  Simulator sim;
  int fires = 0;
  PeriodicTimer timer(sim, 100, [&] { ++fires; });
  timer.start();
  sim.run_until(1000);
  EXPECT_EQ(fires, 10);
  timer.stop();
  sim.run_until(2000);
  EXPECT_EQ(fires, 10);
  EXPECT_EQ(sim.pending(), 0u);
}

TEST(ServerPool, SingleServerSerializesJobs) {
  Simulator sim;
  ServerPool pool(sim, 1);
  std::vector<SimTime> completions;
  for (int i = 0; i < 3; ++i) {
    pool.submit(100, [&] { completions.push_back(sim.now()); });
  }
  sim.run();
  EXPECT_EQ(completions, (std::vector<SimTime>{100, 200, 300}));
  EXPECT_EQ(pool.completed(), 3u);
  EXPECT_EQ(pool.busy_time(), 300);
}

TEST(ServerPool, ParallelServersOverlap) {
  Simulator sim;
  ServerPool pool(sim, 4);
  std::vector<SimTime> completions;
  for (int i = 0; i < 4; ++i) {
    pool.submit(100, [&] { completions.push_back(sim.now()); });
  }
  sim.run();
  for (SimTime t : completions) EXPECT_EQ(t, 100);
}

TEST(ServerPool, QueueingDelayRecorded) {
  Simulator sim;
  ServerPool pool(sim, 1);
  pool.submit(100);
  pool.submit(100);
  sim.run();
  ASSERT_EQ(pool.wait_samples().count(), 2u);
  EXPECT_DOUBLE_EQ(pool.wait_samples().samples()[0], 0.0);
  EXPECT_DOUBLE_EQ(pool.wait_samples().samples()[1], 100.0);
}

// Property: with k servers and n identical jobs, makespan = ceil(n/k)*s.
class PoolMakespanTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PoolMakespanTest, MakespanMatchesTheory) {
  const auto [servers, jobs] = GetParam();
  Simulator sim;
  ServerPool pool(sim, static_cast<std::uint32_t>(servers));
  const SimDuration service = 50;
  for (int i = 0; i < jobs; ++i) pool.submit(service);
  sim.run();
  const SimTime expected = ((jobs + servers - 1) / servers) * service;
  EXPECT_EQ(sim.now(), expected);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PoolMakespanTest,
    ::testing::Combine(::testing::Values(1, 2, 7, 56),
                       ::testing::Values(1, 8, 100)));

}  // namespace
}  // namespace lnic::sim
