// Tests for the framework layer: gateway routing/metrics, route
// encoding, etcd synchronization, manager deployment records, metrics
// rendering, storage, and the autoscaler control loop.
#include <gtest/gtest.h>

#include <optional>

#include "backends/backend.h"
#include "framework/autoscaler.h"
#include "framework/gateway.h"
#include "framework/manager.h"
#include "framework/health.h"
#include "framework/monitor.h"
#include "framework/metrics.h"
#include "framework/storage.h"
#include "kvstore/cache_server.h"
#include "net/network.h"
#include "sim/sharded.h"
#include "sim/simulator.h"
#include "workloads/lambdas.h"

namespace lnic::framework {
namespace {

TEST(Metrics, CountersGaugesSamplersRender) {
  MetricsRegistry registry;
  registry.counter("requests_total").increment(3);
  registry.gauge("replicas") = 2.0;
  registry.sampler("latency").add(10.0);
  registry.sampler("latency").add(20.0);
  const std::string text = registry.render();
  EXPECT_NE(text.find("requests_total 3"), std::string::npos);
  EXPECT_NE(text.find("replicas 2"), std::string::npos);
  EXPECT_NE(text.find("latency_count 2"), std::string::npos);
  EXPECT_NE(text.find("latency_mean 15"), std::string::npos);
  EXPECT_TRUE(registry.has("requests_total"));
  EXPECT_FALSE(registry.has("nope"));
}

TEST(Storage, PutGetTransferTime) {
  BlobStorage storage(1e9);
  storage.put("fw", 1_MiB);
  EXPECT_TRUE(storage.contains("fw"));
  EXPECT_FALSE(storage.contains("nope"));
  ASSERT_TRUE(storage.size_of("fw").ok());
  EXPECT_EQ(storage.size_of("fw").value(), 1_MiB);
  EXPECT_FALSE(storage.size_of("nope").ok());
  const auto t = storage.transfer_time("fw");
  ASSERT_TRUE(t.ok());
  EXPECT_NEAR(to_sec(t.value()), 8.389e-3, 1e-4);
  EXPECT_EQ(storage.list().size(), 1u);
}

TEST(Gateway, RouteEncodingRoundTrips) {
  const auto encoded = Gateway::encode_route(7, {1, 2, 3});
  EXPECT_EQ(encoded, "7|1,2,3");
  const auto decoded = Gateway::decode_route(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().workload, 7u);
  EXPECT_EQ(decoded.value().workers, (std::vector<NodeId>{1, 2, 3}));
  EXPECT_FALSE(Gateway::decode_route("garbage").ok());
  EXPECT_FALSE(Gateway::decode_route("x|1").ok());
}

TEST(Gateway, ReplicaEncodingRoundTrips) {
  const std::vector<Replica> replicas = {
      Replica{1, 1, kUnknownBackendKind},  // plain: encodes as just "1"
      Replica{2, 3, kUnknownBackendKind},  // weighted
      Replica{3, 1, 0},                    // kind-tagged (kLambdaNic)
      Replica{4, 2, 2},                    // both
  };
  const auto encoded = Gateway::encode_replicas(7, replicas);
  EXPECT_EQ(encoded, "7|1,2*3,3@0,4*2@2");
  const auto decoded = Gateway::decode_route(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().workload, 7u);
  EXPECT_EQ(decoded.value().replicas, replicas);
  EXPECT_EQ(decoded.value().workers, (std::vector<NodeId>{1, 2, 3, 4}));
  EXPECT_EQ(decoded.value().total_weight(), 7u);
}

TEST(Gateway, DecodeRouteRejectsMalformedReplicas) {
  EXPECT_FALSE(Gateway::decode_route("").ok());
  EXPECT_FALSE(Gateway::decode_route("7|").ok());
  EXPECT_FALSE(Gateway::decode_route("7|1,,2").ok());    // empty token
  EXPECT_FALSE(Gateway::decode_route("7|1*").ok());      // missing weight
  EXPECT_FALSE(Gateway::decode_route("7|1*0").ok());     // zero weight
  EXPECT_FALSE(Gateway::decode_route("7|1*x").ok());     // non-numeric
  EXPECT_FALSE(Gateway::decode_route("7|1@").ok());      // missing kind
  EXPECT_FALSE(Gateway::decode_route("7|1@999").ok());   // kind > 0xFF
  EXPECT_FALSE(Gateway::decode_route("7|1@x*2").ok());   // suffixes swapped
}

TEST(Gateway, DecodeRouteRejectsTrailingGarbageAndSigns) {
  // std::stoul used to accept these: "2x" parsed as node 2, "-1" wrapped
  // to a huge unsigned, whitespace was skipped.
  EXPECT_FALSE(Gateway::decode_route("7|2x,3").ok());
  EXPECT_FALSE(Gateway::decode_route("7|-1").ok());
  EXPECT_FALSE(Gateway::decode_route("-7|1").ok());
  EXPECT_FALSE(Gateway::decode_route("7|+1").ok());
  EXPECT_FALSE(Gateway::decode_route("7x|1").ok());
  EXPECT_FALSE(Gateway::decode_route(" 7|1").ok());
  EXPECT_FALSE(Gateway::decode_route("7| 1").ok());
  EXPECT_FALSE(Gateway::decode_route("7|1 ").ok());
  EXPECT_FALSE(Gateway::decode_route("7|1*2y").ok());
  EXPECT_FALSE(Gateway::decode_route("7|1@2z").ok());
  // Out-of-range ids (NodeId/WorkloadId are 32-bit).
  EXPECT_FALSE(Gateway::decode_route("7|99999999999").ok());
  EXPECT_FALSE(Gateway::decode_route("99999999999|1").ok());
  // Sanity: the strict parser still accepts well-formed routes.
  EXPECT_TRUE(Gateway::decode_route("7|2,3").ok());
  EXPECT_TRUE(Gateway::decode_route("7|2*2@1,3").ok());
}

TEST(Gateway, WeightedReplicasSplitTrafficProportionally) {
  sim::Simulator sim;
  net::Network network(sim);
  int hits[2] = {0, 0};
  NodeId w[2];
  for (int i = 0; i < 2; ++i) w[i] = network.attach(nullptr);
  for (int i = 0; i < 2; ++i) {
    network.set_handler(w[i], [&, i](const net::Packet& p) {
      if (p.kind != net::PacketKind::kRequest) return;
      ++hits[i];
      net::Packet reply;
      reply.src = w[i];
      reply.dst = p.src;
      reply.kind = net::PacketKind::kResponse;
      reply.lambda = p.lambda;
      network.send(reply);
    });
  }
  Gateway gateway(sim, network);
  gateway.register_replicas("f", 1,
                            {Replica{w[0], 3, kUnknownBackendKind},
                             Replica{w[1], 1, kUnknownBackendKind}});
  int done = 0;
  for (int i = 0; i < 40; ++i) {
    gateway.invoke("f", {}, [&](Result<proto::RpcResponse> r) {
      EXPECT_TRUE(r.ok());
      ++done;
    });
  }
  sim.run();
  EXPECT_EQ(done, 40);
  EXPECT_EQ(hits[0], 30);  // weight 3 of 4
  EXPECT_EQ(hits[1], 10);  // weight 1 of 4
}

/// Two echo replicas on a 2-shard fabric: w[0] remote (shard 1), w[1]
/// co-sharded with the gateway (shard 0). Returns per-replica hit
/// counts after `requests` invocations.
void run_affinity_split(std::uint32_t weight0, std::uint32_t weight1,
                        int requests, int hits[2]) {
  sim::ShardedSimulator sharded(2);
  net::Network network(sharded);
  NodeId w[2];
  network.set_attach_shard(1);
  w[0] = network.attach(nullptr);
  network.set_attach_shard(0);
  w[1] = network.attach(nullptr);
  for (int i = 0; i < 2; ++i) {
    network.set_handler(w[i], [&network, &w, hits, i](const net::Packet& p) {
      if (p.kind != net::PacketKind::kRequest) return;
      ++hits[i];
      net::Packet reply;
      reply.src = w[i];
      reply.dst = p.src;
      reply.kind = net::PacketKind::kResponse;
      reply.lambda = p.lambda;
      network.send(reply);
    });
  }
  Gateway gateway(sharded.shard(0), network);
  gateway.enable_shard_affinity(network);
  gateway.register_replicas("f", 1,
                            {Replica{w[0], weight0, kUnknownBackendKind},
                             Replica{w[1], weight1, kUnknownBackendKind}});
  int done = 0;
  for (int i = 0; i < requests; ++i) {
    gateway.invoke("f", {}, [&done](Result<proto::RpcResponse> r) {
      EXPECT_TRUE(r.ok());
      ++done;
    });
  }
  sharded.run();
  EXPECT_EQ(done, requests);
}

TEST(Gateway, ShardAffinityPrefersCoShardedReplicaAtEqualWeight) {
  // Equal weights say "any replica is fine" — affinity routing may then
  // keep every request on the gateway's own shard.
  int hits[2] = {0, 0};
  run_affinity_split(/*weight0=*/1, /*weight1=*/1, /*requests=*/12, hits);
  EXPECT_EQ(hits[0], 0);   // remote replica skipped
  EXPECT_EQ(hits[1], 12);  // co-sharded replica took everything
}

TEST(Gateway, ShardAffinityDegradesToWeightedWhenWeightsDiffer) {
  // Unequal weights encode intent (canary splits, capacity skew);
  // affinity must not override them. Exact weighted proportions, same
  // as the single-shard WeightedReplicasSplitTrafficProportionally.
  int hits[2] = {0, 0};
  run_affinity_split(/*weight0=*/3, /*weight1=*/1, /*requests=*/40, hits);
  EXPECT_EQ(hits[0], 30);  // remote but weight 3 of 4
  EXPECT_EQ(hits[1], 10);
}

struct GatewayRig {
  sim::Simulator sim;
  net::Network network{sim};
  std::unique_ptr<backends::Backend> backend;
  std::unique_ptr<kvstore::CacheServer> cache;
  Gateway gateway{sim, network};

  GatewayRig() {
    backend = backends::make_backend(backends::BackendKind::kLambdaNic, sim,
                                     network);
    cache = std::make_unique<kvstore::CacheServer>(sim, network);
    backend->set_kv_server(cache->node());
    EXPECT_TRUE(backend->deploy(workloads::make_standard_workloads()).ok());
    sim.run_until(seconds(20));
  }
};

TEST(Gateway, InvokesByNameAndRecordsMetrics) {
  GatewayRig rig;
  rig.gateway.register_function("web_server", workloads::kWebServerId,
                                {rig.backend->node()});
  std::optional<Result<proto::RpcResponse>> got;
  rig.gateway.invoke("web_server", workloads::encode_web_request(0),
                     [&](Result<proto::RpcResponse> r) { got = std::move(r); });
  rig.sim.run();
  ASSERT_TRUE(got.has_value());
  ASSERT_TRUE(got->ok());
  EXPECT_EQ(rig.gateway.metrics()
                .counter("gateway_requests_total{fn=web_server}")
                .value(),
            1u);
  EXPECT_EQ(rig.gateway.latency("web_server").count(), 1u);
}

TEST(Gateway, UnroutableFunctionFailsFast) {
  GatewayRig rig;
  bool failed = false;
  rig.gateway.invoke("missing", {}, [&](Result<proto::RpcResponse> r) {
    EXPECT_FALSE(r.ok());
    failed = true;
  });
  rig.sim.run();
  EXPECT_TRUE(failed);
  EXPECT_EQ(rig.gateway.metrics().counter("gateway_unroutable_total").value(),
            1u);
}

TEST(Gateway, RoundRobinAcrossWorkers) {
  sim::Simulator sim;
  net::Network network(sim);
  // Two raw echo workers record hit counts.
  int hits[2] = {0, 0};
  NodeId w[2];
  for (int i = 0; i < 2; ++i) {
    w[i] = network.attach(nullptr);
  }
  for (int i = 0; i < 2; ++i) {
    network.set_handler(w[i], [&, i](const net::Packet& p) {
      if (p.kind != net::PacketKind::kRequest) return;
      ++hits[i];
      net::Packet reply;
      reply.src = w[i];
      reply.dst = p.src;
      reply.kind = net::PacketKind::kResponse;
      reply.lambda = p.lambda;
      network.send(reply);
    });
  }
  Gateway gateway(sim, network);
  gateway.register_function("f", 1, {w[0], w[1]});
  int done = 0;
  for (int i = 0; i < 10; ++i) {
    gateway.invoke("f", {}, [&](Result<proto::RpcResponse> r) {
      EXPECT_TRUE(r.ok());
      ++done;
    });
  }
  sim.run();
  EXPECT_EQ(done, 10);
  EXPECT_EQ(hits[0], 5);
  EXPECT_EQ(hits[1], 5);
}

TEST(Gateway, SyncsRoutesFromEtcd) {
  sim::Simulator sim;
  net::Network network(sim);
  kvstore::EtcdStore etcd(sim, 3);
  etcd.start();
  sim.run_until(seconds(2));
  ASSERT_TRUE(etcd.put("route/fn_a", Gateway::encode_route(5, {9})).ok());
  sim.run_until(seconds(3));

  Gateway gateway(sim, network);
  gateway.sync_with(etcd);
  ASSERT_TRUE(gateway.has_function("fn_a"));  // existing entries applied
  // Watch picks up later changes.
  ASSERT_TRUE(etcd.put("route/fn_b", Gateway::encode_route(6, {4, 5})).ok());
  sim.run_until(seconds(4));
  ASSERT_TRUE(gateway.has_function("fn_b"));
  EXPECT_EQ(gateway.route("fn_b")->workload, 6u);
}

TEST(Manager, DeployRegistersRoutesAndArtifacts) {
  GatewayRig rig;
  BlobStorage storage;
  WorkloadManager manager(rig.sim, storage, nullptr);
  auto record = manager.deploy(workloads::make_standard_workloads(),
                               *rig.backend, &rig.gateway);
  ASSERT_TRUE(record.ok()) << record.error().message;
  EXPECT_EQ(record.value().functions.size(), 4u);
  EXPECT_GT(record.value().artifact_bytes, 0u);
  EXPECT_GT(record.value().startup_time, 0);
  EXPECT_TRUE(rig.gateway.has_function("web_server"));
  EXPECT_TRUE(rig.gateway.has_function("image_transformer"));
  EXPECT_FALSE(storage.list().empty());
  EXPECT_EQ(manager.deployments().size(), 1u);
}

TEST(Manager, SecondDeploymentAddsWorkerReplica) {
  GatewayRig rig;
  auto backend2 = backends::make_backend(backends::BackendKind::kLambdaNic,
                                         rig.sim, rig.network);
  backend2->set_kv_server(rig.cache->node());
  BlobStorage storage;
  WorkloadManager manager(rig.sim, storage, nullptr);
  ASSERT_TRUE(manager
                  .deploy(workloads::make_standard_workloads(), *rig.backend,
                          &rig.gateway)
                  .ok());
  ASSERT_TRUE(manager
                  .deploy(workloads::make_standard_workloads(), *backend2,
                          &rig.gateway)
                  .ok());
  EXPECT_EQ(rig.gateway.route("web_server")->workers.size(), 2u);
}

TEST(Manager, TenantDeployNamespacesRoutesAndInstallsQuota) {
  GatewayRig rig;
  BlobStorage storage;
  WorkloadManager manager(rig.sim, storage, nullptr);
  nicsim::TenantQuota quota;
  quota.instr_store_words = 1 << 20;
  quota.emem_bytes = 1 << 30;
  manager.set_tenant_quota("acme", quota);

  std::vector<backends::Backend*> pool = {rig.backend.get()};
  auto record = manager.deploy(workloads::make_standard_workloads(), pool,
                               placement_policy(PlacementPolicyKind::kNicFirst),
                               &rig.gateway, "acme");
  ASSERT_TRUE(record.ok()) << record.error().message;
  EXPECT_EQ(record.value().tenant, "acme");
  EXPECT_NE(record.value().tenant_id, kDefaultTenant);
  // Routes live in the tenant namespace, carrying the tenant id.
  EXPECT_FALSE(rig.gateway.has_function("web_server"));
  ASSERT_TRUE(rig.gateway.has_function("acme/web_server"));
  EXPECT_EQ(rig.gateway.route("acme/web_server")->tenant,
            record.value().tenant_id);
  // The quota and workload assignments landed on the NIC before deploy;
  // usage is attributed to the tenant.
  auto& nic = static_cast<backends::LambdaNicBackend&>(*pool[0]).nic();
  EXPECT_EQ(nic.tenant_of(workloads::kWebServerId), record.value().tenant_id);
  const nicsim::TenantUsage* usage =
      nic.tenant_usage(record.value().tenant_id);
  ASSERT_NE(usage, nullptr);
  EXPECT_GT(usage->instr_words, 0u);
  // An impossible quota rejects a re-deploy outright.
  manager.set_tenant_quota("tiny", nicsim::TenantQuota{.instr_store_words = 1});
  auto rejected =
      manager.deploy(workloads::make_standard_workloads(), pool,
                     placement_policy(PlacementPolicyKind::kNicFirst),
                     &rig.gateway, "tiny");
  EXPECT_FALSE(rejected.ok());
}

TEST(Gateway, RateLimitThrottlesExcessTraffic) {
  // §7 security: the gateway blocks malicious request floods.
  sim::Simulator sim;
  net::Network network(sim);
  NodeId worker = network.attach(nullptr);
  network.set_handler(worker, [&](const net::Packet& p) {
    if (p.kind != net::PacketKind::kRequest) return;
    net::Packet reply;
    reply.src = worker;
    reply.dst = p.src;
    reply.kind = net::PacketKind::kResponse;
    reply.lambda = p.lambda;
    network.send(reply);
  });
  Gateway gateway(sim, network);
  gateway.register_function("f", 1, {worker});
  gateway.set_rate_limit("f", RateLimit{/*rps=*/100.0, /*burst=*/10.0});

  int ok = 0, throttled = 0;
  // Burst of 50 back-to-back requests: ~10 pass (the burst), rest fail.
  for (int i = 0; i < 50; ++i) {
    gateway.invoke("f", {}, [&](Result<proto::RpcResponse> r) {
      if (r.ok()) {
        ++ok;
      } else {
        ++throttled;
      }
    });
  }
  sim.run();
  EXPECT_EQ(ok, 10);
  EXPECT_EQ(throttled, 40);
  EXPECT_EQ(gateway.metrics().counter("gateway_throttled_total{fn=f}").value(),
            40u);

  // After a second the bucket refills and requests flow again.
  sim.run_until(sim.now() + seconds(1));
  gateway.invoke("f", {}, [&](Result<proto::RpcResponse> r) {
    EXPECT_TRUE(r.ok());
    ++ok;
  });
  sim.run();
  EXPECT_EQ(ok, 11);
}

TEST(Gateway, SteadyRateUnderLimitPasses) {
  sim::Simulator sim;
  net::Network network(sim);
  NodeId worker = network.attach(nullptr);
  network.set_handler(worker, [&](const net::Packet& p) {
    if (p.kind != net::PacketKind::kRequest) return;
    net::Packet reply;
    reply.src = worker;
    reply.dst = p.src;
    reply.kind = net::PacketKind::kResponse;
    reply.lambda = p.lambda;
    network.send(reply);
  });
  Gateway gateway(sim, network);
  gateway.register_function("f", 1, {worker});
  gateway.set_rate_limit("f", RateLimit{1000.0, 2.0});
  int ok = 0;
  sim::PeriodicTimer load(sim, milliseconds(2), [&] {  // 500 rps < 1000
    gateway.invoke("f", {}, [&](Result<proto::RpcResponse> r) {
      if (r.ok()) ++ok;
    });
  });
  load.start();
  sim.run_until(seconds(1));
  load.stop();
  sim.run();
  EXPECT_EQ(ok, 500);
}

TEST(Gateway, FailsOverToReplicaWhenWorkerDies) {
  sim::Simulator sim;
  net::Network network(sim);
  // Worker 0 is dead (never replies); worker 1 echoes.
  NodeId dead = network.attach(nullptr);
  NodeId live = network.attach(nullptr);
  network.set_handler(live, [&](const net::Packet& p) {
    if (p.kind != net::PacketKind::kRequest) return;
    net::Packet reply;
    reply.src = live;
    reply.dst = p.src;
    reply.kind = net::PacketKind::kResponse;
    reply.lambda = p.lambda;
    reply.payload = {42};
    network.send(reply);
  });
  GatewayConfig config;
  config.failover_attempts = 1;
  config.rpc.retransmit_timeout = milliseconds(5);
  config.rpc.max_retries = 2;
  Gateway gateway(sim, network, config);
  gateway.register_function("f", 1, {dead, live});

  int ok = 0, failed = 0;
  for (int i = 0; i < 6; ++i) {
    gateway.invoke("f", {}, [&](Result<proto::RpcResponse> r) {
      if (r.ok()) {
        ++ok;
      } else {
        ++failed;
      }
    });
  }
  sim.run_until(milliseconds(200));
  // Requests that initially hit the dead worker fail over to the live
  // one; after the first failure the dead worker is quarantined (kept in
  // the route, skipped by the dispatcher) rather than removed.
  EXPECT_EQ(ok, 6);
  EXPECT_EQ(failed, 0);
  ASSERT_NE(gateway.route("f"), nullptr);
  EXPECT_EQ(gateway.route("f")->workers,
            (std::vector<NodeId>{dead, live}));
  EXPECT_TRUE(gateway.is_quarantined(dead));
  EXPECT_FALSE(gateway.is_quarantined(live));
  EXPECT_GE(
      gateway.metrics().counter("gateway_failovers_total{fn=f}").value(), 1u);
  EXPECT_GE(gateway.metrics().counter("gateway_quarantine_total").value(), 1u);
  // Once the cooldown lapses the worker re-enters the rotation on its
  // own (no manager intervention).
  sim.run();
  EXPECT_FALSE(gateway.is_quarantined(dead));
}

TEST(Gateway, FailoverExhaustionReportsError) {
  sim::Simulator sim;
  net::Network network(sim);
  NodeId dead1 = network.attach(nullptr);
  NodeId dead2 = network.attach(nullptr);
  GatewayConfig config;
  config.failover_attempts = 1;
  config.rpc.retransmit_timeout = milliseconds(2);
  config.rpc.max_retries = 1;
  Gateway gateway(sim, network, config);
  gateway.register_function("f", 1, {dead1, dead2});
  bool failed = false;
  gateway.invoke("f", {}, [&](Result<proto::RpcResponse> r) {
    EXPECT_FALSE(r.ok());
    failed = true;
  });
  sim.run();
  EXPECT_TRUE(failed);
}

TEST(Gateway, RemoveWorkerDropsFromAllRoutes) {
  sim::Simulator sim;
  net::Network network(sim);
  Gateway gateway(sim, network);
  gateway.register_function("a", 1, {10, 11});
  gateway.register_function("b", 2, {11, 12});
  gateway.remove_worker(11);
  EXPECT_EQ(gateway.route("a")->workers, (std::vector<NodeId>{10}));
  EXPECT_EQ(gateway.route("b")->workers, (std::vector<NodeId>{12}));
}

TEST(Monitor, ScrapesBackendGauges) {
  sim::Simulator sim;
  net::Network network(sim);
  auto backend = backends::make_backend(backends::BackendKind::kLambdaNic,
                                        sim, network);
  backend->set_tenant_of(workloads::kWebServerId, 4);
  backend->set_tenant_quota(4, {.instr_store_words = 1u << 20});
  ASSERT_TRUE(backend->deploy(workloads::make_standard_workloads()).ok());
  Monitor monitor(sim, milliseconds(100));
  monitor.watch_backend("m2", backend.get());
  monitor.start();
  sim.run_until(seconds(1));
  monitor.stop();
  sim.run();
  EXPECT_GE(monitor.scrapes(), 9u);
  EXPECT_TRUE(monitor.metrics().has("backend_completed{node=m2}"));
  EXPECT_GT(monitor.metrics().gauge("backend_nic_mem_mib{node=m2}"), 0.0);
  // Per-tenant footprint + quota gauges for the assigned tenant.
  EXPECT_GT(
      monitor.metrics().gauge("nic_tenant_instr_words{node=m2,tenant=4}"),
      0.0);
  EXPECT_TRUE(monitor.metrics().has(
      "nic_tenant_mem_bytes{node=m2,region=emem,tenant=4}"));
  EXPECT_EQ(monitor.metrics().gauge(
                "nic_tenant_quota_instr_words{node=m2,tenant=4}"),
            static_cast<double>(1u << 20));
}

TEST(HealthChecker, RemovesDeadWorkerFromRoutes) {
  sim::Simulator sim;
  net::Network network(sim);
  // One live echo worker, one that dies after 200 ms.
  bool worker0_alive = true;
  NodeId w0 = network.attach(nullptr);
  NodeId w1 = network.attach(nullptr);
  auto echo = [&](NodeId self, bool* alive) {
    return [&network, self, alive](const net::Packet& p) {
      if (alive != nullptr && !*alive) return;
      if (p.kind != net::PacketKind::kRequest) return;
      net::Packet reply;
      reply.src = self;
      reply.dst = p.src;
      reply.kind = net::PacketKind::kResponse;
      reply.lambda = p.lambda;
      network.send(reply);
    };
  };
  network.set_handler(w0, echo(w0, &worker0_alive));
  network.set_handler(w1, echo(w1, nullptr));

  Gateway gateway(sim, network);
  gateway.register_function("f", 1, {w0, w1});

  HealthConfig config;
  config.probe_interval = milliseconds(100);
  config.probe_timeout = milliseconds(30);
  config.max_failures = 3;
  HealthChecker checker(sim, network, gateway, config);
  checker.watch(w0, {});
  checker.watch(w1, {});
  NodeId reported_dead = kInvalidNode;
  checker.set_on_dead([&](NodeId n) { reported_dead = n; });
  checker.start();

  sim.run_until(milliseconds(250));
  EXPECT_TRUE(checker.is_healthy(w0));
  EXPECT_TRUE(checker.is_healthy(w1));

  worker0_alive = false;  // w0 crashes
  sim.run_until(milliseconds(250) + milliseconds(600));
  // The dead worker stays in the route but is quarantined in the gateway
  // (the dispatcher skips it until a probe succeeds again).
  EXPECT_FALSE(checker.is_healthy(w0));
  EXPECT_TRUE(checker.is_healthy(w1));
  EXPECT_EQ(gateway.route("f")->workers, (std::vector<NodeId>{w0, w1}));
  EXPECT_TRUE(gateway.is_quarantined(w0));
  EXPECT_FALSE(gateway.is_quarantined(w1));
  checker.stop();
  sim.run();
  EXPECT_FALSE(checker.is_healthy(w0));
  EXPECT_EQ(reported_dead, w0);
  EXPECT_EQ(checker.removals(), 1u);
}

TEST(HealthChecker, TransientFailureDoesNotKill) {
  sim::Simulator sim;
  net::Network network(sim);
  int drop_next = 1;  // drop exactly one probe
  NodeId w = network.attach(nullptr);
  network.set_handler(w, [&](const net::Packet& p) {
    if (p.kind != net::PacketKind::kRequest) return;
    if (drop_next > 0) {
      --drop_next;
      return;
    }
    net::Packet reply;
    reply.src = w;
    reply.dst = p.src;
    reply.kind = net::PacketKind::kResponse;
    reply.lambda = p.lambda;
    network.send(reply);
  });
  Gateway gateway(sim, network);
  gateway.register_function("f", 1, {w});
  HealthConfig config;
  config.probe_interval = milliseconds(50);
  config.probe_timeout = milliseconds(20);
  config.max_failures = 3;
  HealthChecker checker(sim, network, gateway, config);
  checker.watch(w, {});
  checker.start();
  sim.run_until(milliseconds(500));
  checker.stop();
  sim.run();
  EXPECT_TRUE(checker.is_healthy(w));
  EXPECT_EQ(gateway.route("f")->workers.size(), 1u);
}

TEST(Autoscaler, ScalesUpUnderLoadAndBackDown) {
  sim::Simulator sim;
  net::Network network(sim);
  Gateway gateway(sim, network);
  // A single instant echo worker keeps requests flowing.
  NodeId worker = network.attach(nullptr);
  network.set_handler(worker, [&](const net::Packet& p) {
    if (p.kind != net::PacketKind::kRequest) return;
    net::Packet reply;
    reply.src = worker;
    reply.dst = p.src;
    reply.kind = net::PacketKind::kResponse;
    reply.lambda = p.lambda;
    network.send(reply);
  });
  gateway.register_function("hot", 1, {worker});

  std::map<std::string, std::uint32_t> provisioned;
  AutoscalerConfig config;
  config.evaluation_period = milliseconds(100);
  config.target_rps_per_replica = 100.0;
  config.max_replicas = 10;
  // Short hysteresis so the scale-down lands inside the test window.
  config.scale_down_evals = 2;
  config.scale_down_cooldown = milliseconds(200);
  Autoscaler scaler(sim, gateway, config,
                    [&](const std::string& name, std::uint32_t replicas) {
                      provisioned[name] = replicas;
                    });
  scaler.track("hot");
  scaler.start();

  // Offer ~1000 rps for half a second.
  sim::PeriodicTimer load(sim, milliseconds(1), [&] {
    gateway.invoke("hot", {}, nullptr);
  });
  load.start();
  sim.run_until(milliseconds(500));
  load.stop();
  EXPECT_GE(scaler.replicas("hot"), 5u);
  EXPECT_GE(provisioned["hot"], 5u);

  // Load stops; the scaler settles back to the minimum.
  sim.run_until(milliseconds(1500));
  scaler.stop();
  sim.run();
  EXPECT_EQ(scaler.replicas("hot"), config.min_replicas);
  EXPECT_GT(scaler.scale_events(), 1u);
}

// ------------------------------------------------------------ tenancy

TEST(Gateway, TenantReplicaEncodingRoundTrips) {
  const std::vector<Replica> replicas = {Replica{1, 2, 0},
                                         Replica{2, 1, kUnknownBackendKind}};
  const auto encoded = Gateway::encode_replicas(7, replicas, 3);
  EXPECT_EQ(encoded, "7~3|1*2@0,2");
  const auto decoded = Gateway::decode_route(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().workload, 7u);
  EXPECT_EQ(decoded.value().tenant, 3u);
  EXPECT_EQ(decoded.value().replicas, replicas);
  // The default tenant keeps the legacy encoding byte-for-byte.
  EXPECT_EQ(Gateway::encode_replicas(7, replicas), "7|1*2@0,2");
  const auto legacy = Gateway::decode_route("7|1,2");
  ASSERT_TRUE(legacy.ok());
  EXPECT_EQ(legacy.value().tenant, kDefaultTenant);
  // Malformed tenant suffixes are rejected.
  EXPECT_FALSE(Gateway::decode_route("7~|1").ok());
  EXPECT_FALSE(Gateway::decode_route("7~0|1").ok());
  EXPECT_FALSE(Gateway::decode_route("7~x|1").ok());
  EXPECT_FALSE(Gateway::decode_route("~3|1").ok());
}

TEST(Gateway, TenantRouteStampsHeaderAndLabelsMetrics) {
  sim::Simulator sim;
  net::Network network(sim);
  TenantId seen_tenant = kDefaultTenant;
  NodeId worker = network.attach(nullptr);
  network.set_handler(worker, [&](const net::Packet& p) {
    if (p.kind != net::PacketKind::kRequest) return;
    seen_tenant = p.lambda.tenant_id;
    net::Packet reply;
    reply.src = worker;
    reply.dst = p.src;
    reply.kind = net::PacketKind::kResponse;
    reply.lambda = p.lambda;
    network.send(reply);
  });
  Gateway gateway(sim, network);
  const TenantId acme = gateway.register_tenant("acme");
  EXPECT_EQ(acme, 1u);
  EXPECT_EQ(gateway.register_tenant("acme"), acme);  // idempotent
  gateway.register_replicas("acme/echo", 5,
                            {Replica{worker, 1, kUnknownBackendKind}}, acme);

  std::optional<Result<proto::RpcResponse>> got;
  gateway.invoke("acme/echo", {},
                 [&](Result<proto::RpcResponse> r) { got = std::move(r); });
  sim.run();
  ASSERT_TRUE(got.has_value());
  ASSERT_TRUE(got->ok());
  // The tenant id rode the lambda header to the worker.
  EXPECT_EQ(seen_tenant, acme);
  // Metrics carry the tenant label; the tenant-less series stays clean.
  const Labels labeled = gateway.metric_labels("acme/echo");
  EXPECT_EQ(gateway.metrics().counter("gateway_requests_total", labeled)
                .value(),
            1u);
  EXPECT_EQ(
      gateway.metrics()
          .counter("gateway_requests_total", {{"fn", "acme/echo"}})
          .value(),
      0u);
}

TEST(Autoscaler, TrackProvisionsMinReplicasImmediately) {
  sim::Simulator sim;
  net::Network network(sim);
  Gateway gateway(sim, network);
  std::map<std::string, std::uint32_t> provisioned;
  AutoscalerConfig config;
  config.min_replicas = 2;
  Autoscaler scaler(sim, gateway, config,
                    [&](const std::string& name, std::uint32_t replicas) {
                      provisioned[name] = replicas;
                    });
  scaler.track("f");
  // The floor is provisioned on track(), not first evaluation.
  EXPECT_EQ(provisioned["f"], 2u);
  EXPECT_EQ(scaler.replicas("f"), 2u);
  // Re-tracking is a no-op, not a re-provision.
  provisioned.clear();
  scaler.track("f");
  EXPECT_TRUE(provisioned.empty());
}

TEST(Autoscaler, ScaleDownWaitsForStreakAndCooldown) {
  sim::Simulator sim;
  net::Network network(sim);
  Gateway gateway(sim, network);
  NodeId worker = network.attach(nullptr);
  network.set_handler(worker, [&](const net::Packet& p) {
    if (p.kind != net::PacketKind::kRequest) return;
    net::Packet reply;
    reply.src = worker;
    reply.dst = p.src;
    reply.kind = net::PacketKind::kResponse;
    reply.lambda = p.lambda;
    network.send(reply);
  });
  gateway.register_function("f", 1, {worker});

  AutoscalerConfig config;
  config.evaluation_period = milliseconds(100);
  config.target_rps_per_replica = 100.0;
  config.max_replicas = 10;
  config.scale_down_evals = 3;
  config.scale_down_cooldown = seconds(1);
  std::uint32_t downs = 0;
  std::uint32_t last = config.min_replicas;
  Autoscaler scaler(sim, gateway, config,
                    [&](const std::string&, std::uint32_t replicas) {
                      if (replicas < last) ++downs;
                      last = replicas;
                    });
  scaler.track("f");
  scaler.start();

  // Bursty on-off load: 100 ms of ~1000 rps, then 200 ms idle, repeated.
  // Idle gaps produce at most 2 consecutive low evaluations — under the
  // streak of 3 — so the pre-hysteresis scaler would flap down/up every
  // cycle while this one must hold its size.
  sim::PeriodicTimer load(sim, milliseconds(1), [&] {
    gateway.invoke("f", {}, nullptr);
  });
  for (int cycle = 0; cycle < 5; ++cycle) {
    load.start();
    sim.run_until(sim.now() + milliseconds(100));
    load.stop();
    sim.run_until(sim.now() + milliseconds(200));
  }
  EXPECT_EQ(downs, 0u);
  EXPECT_GE(scaler.replicas("f"), 5u);

  // A sustained quiet period finally releases capacity — once, to the
  // floor, not step-by-flapping-step.
  sim.run_until(sim.now() + seconds(3));
  scaler.stop();
  sim.run();
  EXPECT_EQ(scaler.replicas("f"), config.min_replicas);
  EXPECT_EQ(downs, 1u);
}

TEST(Autoscaler, ScalesFromZeroOnOfferedSignal) {
  sim::Simulator sim;
  net::Network network(sim);
  Gateway gateway(sim, network);

  AutoscalerConfig config;
  config.evaluation_period = milliseconds(100);
  config.target_rps_per_replica = 100.0;
  config.min_replicas = 0;
  std::uint32_t provisioned = 123;
  Autoscaler scaler(sim, gateway, config,
                    [&](const std::string&, std::uint32_t replicas) {
                      provisioned = replicas;
                    });
  scaler.track("cold");
  EXPECT_EQ(provisioned, 0u);  // scale-to-zero floor

  // No gateway route exists, so gateway_requests_total never moves; the
  // offered count from the SLO signal is the only wake-up source.
  std::uint64_t offered = 0;
  scaler.set_signal([&](const std::string&) {
    SloSignal signal;
    signal.valid = true;
    signal.offered = offered;
    return signal;
  });
  scaler.start();
  sim.run_until(milliseconds(150));
  EXPECT_EQ(scaler.replicas("cold"), 0u);

  offered = 50;  // 50 requests arrive while scaled to zero
  sim.run_until(milliseconds(250));
  scaler.stop();
  sim.run();
  EXPECT_GE(scaler.replicas("cold"), 1u);
  EXPECT_GE(provisioned, 1u);
}

TEST(Autoscaler, HighP99GrowsReplicasBeyondRateTarget) {
  sim::Simulator sim;
  net::Network network(sim);
  Gateway gateway(sim, network);

  AutoscalerConfig config;
  config.evaluation_period = milliseconds(100);
  config.target_rps_per_replica = 1000.0;  // rate alone says 1 replica
  config.target_p99_ms = 5.0;
  config.max_replicas = 4;
  Autoscaler scaler(sim, gateway, config,
                    [](const std::string&, std::uint32_t) {});
  scaler.track("slow");

  std::uint64_t offered = 0;
  double p99 = 20.0;  // way over the 5 ms target
  scaler.set_signal([&](const std::string&) {
    SloSignal signal;
    signal.valid = true;
    signal.offered = offered;
    signal.p99_ms = p99;
    return signal;
  });
  scaler.start();

  // ~10 rps of demand with a violated p99: rate says stay at 1, the
  // latency signal forces +1 per evaluation up to the cap.
  sim::PeriodicTimer demand(sim, milliseconds(100), [&] { offered += 1; });
  demand.start();
  sim.run_until(milliseconds(450));
  EXPECT_GE(scaler.replicas("slow"), 3u);

  p99 = 1.0;  // back under target: growth stops (no further ups)
  const std::uint32_t at_recovery = scaler.replicas("slow");
  sim.run_until(milliseconds(750));
  demand.stop();
  scaler.stop();
  sim.run();
  EXPECT_EQ(scaler.replicas("slow"), at_recovery);
}

// --------------------------------------------- quarantine and overload

/// Two echo workers with per-worker hit counts and a kill switch.
struct EchoPair {
  sim::Simulator& sim;
  net::Network& network;
  NodeId node[2];
  int hits[2] = {0, 0};
  bool alive[2] = {true, true};

  explicit EchoPair(sim::Simulator& s, net::Network& net)
      : sim(s), network(net) {
    for (int i = 0; i < 2; ++i) {
      node[i] = network.attach(nullptr);
      network.set_handler(node[i], [this, i](const net::Packet& p) {
        if (!alive[i] || p.kind != net::PacketKind::kRequest) return;
        ++hits[i];
        net::Packet reply;
        reply.src = node[i];
        reply.dst = p.src;
        reply.kind = net::PacketKind::kResponse;
        reply.lambda = p.lambda;
        reply.payload = {static_cast<std::uint8_t>(i)};
        network.send(reply);
      });
    }
  }
};

TEST(Gateway, QuarantinedWorkerIsSkippedAndReinstated) {
  sim::Simulator sim;
  net::Network network(sim);
  EchoPair workers(sim, network);
  Gateway gateway(sim, network);
  gateway.register_function("f", 1, {workers.node[0], workers.node[1]});

  gateway.quarantine_worker(workers.node[0]);
  EXPECT_TRUE(gateway.is_quarantined(workers.node[0]));
  EXPECT_EQ(gateway.quarantined_count(), 1u);
  int ok = 0;
  for (int i = 0; i < 10; ++i) {
    gateway.invoke("f", {}, [&](Result<proto::RpcResponse> r) {
      if (r.ok()) ++ok;
    });
  }
  sim.run_until(milliseconds(10));
  EXPECT_EQ(ok, 10);
  EXPECT_EQ(workers.hits[0], 0);  // skipped while quarantined
  EXPECT_EQ(workers.hits[1], 10);

  gateway.reinstate_worker(workers.node[0]);
  EXPECT_FALSE(gateway.is_quarantined(workers.node[0]));
  for (int i = 0; i < 10; ++i) {
    gateway.invoke("f", {}, [&](Result<proto::RpcResponse> r) {
      if (r.ok()) ++ok;
    });
  }
  sim.run();
  EXPECT_EQ(ok, 20);
  EXPECT_EQ(workers.hits[0], 5);  // back in the weighted rotation
  EXPECT_EQ(workers.hits[1], 15);
}

TEST(Gateway, AllQuarantinedFallsBackToFullReplicaSet) {
  sim::Simulator sim;
  net::Network network(sim);
  EchoPair workers(sim, network);
  Gateway gateway(sim, network);
  gateway.register_function("f", 1, {workers.node[0], workers.node[1]});
  gateway.quarantine_worker(workers.node[0]);
  gateway.quarantine_worker(workers.node[1]);
  int ok = 0;
  for (int i = 0; i < 4; ++i) {
    gateway.invoke("f", {}, [&](Result<proto::RpcResponse> r) {
      if (r.ok()) ++ok;
    });
  }
  sim.run_until(milliseconds(10));
  // Traffic keeps flowing (and keeps probing) instead of failing
  // unroutable when every replica is sidelined.
  EXPECT_EQ(ok, 4);
  EXPECT_EQ(workers.hits[0] + workers.hits[1], 4);
}

TEST(Gateway, ShedsWhenConcurrencyAndQueueAreFull) {
  sim::Simulator sim;
  net::Network network(sim);
  // A worker that replies only after 10 ms, so requests pile up.
  net::Network* net_ptr = &network;
  NodeId slow = network.attach(nullptr);
  network.set_handler(slow, [&, slow](const net::Packet& p) {
    if (p.kind != net::PacketKind::kRequest) return;
    net::Packet reply;
    reply.src = slow;
    reply.dst = p.src;
    reply.kind = net::PacketKind::kResponse;
    reply.lambda = p.lambda;
    sim.schedule(milliseconds(10), [net_ptr, reply] { net_ptr->send(reply); });
  });
  GatewayConfig config;
  config.max_inflight_per_function = 1;
  config.max_queue_depth = 1;
  config.queue_deadline = seconds(1);  // no deadline shedding here
  config.rpc.retransmit_timeout = milliseconds(50);
  Gateway gateway(sim, network, config);
  gateway.register_function("f", 1, {slow});

  int ok = 0, overloaded = 0;
  for (int i = 0; i < 3; ++i) {
    gateway.invoke("f", {}, [&](Result<proto::RpcResponse> r) {
      if (r.ok()) {
        ++ok;
      } else {
        EXPECT_NE(r.error().message.find("overloaded"), std::string::npos);
        ++overloaded;
      }
    });
  }
  // The third arrival is shed synchronously (limiter full, queue full).
  EXPECT_EQ(overloaded, 1);
  sim.run();
  EXPECT_EQ(ok, 2);  // inflight + the queued one complete in turn
  EXPECT_EQ(
      gateway.metrics().counter("gateway_shed_total{fn=f}").value(), 1u);
  // Shed is distinct from rate-limit throttling.
  EXPECT_EQ(
      gateway.metrics().counter("gateway_throttled_total{fn=f}").value(), 0u);
}

TEST(Gateway, QueueDeadlineShedsStaleRequests) {
  sim::Simulator sim;
  net::Network network(sim);
  NodeId dead = network.attach(nullptr);  // never replies
  GatewayConfig config;
  config.max_inflight_per_function = 1;
  config.max_queue_depth = 8;
  config.queue_deadline = milliseconds(5);
  config.failover_attempts = 0;
  config.rpc.retransmit_timeout = milliseconds(20);
  config.rpc.max_retries = 2;  // first request fails after ~60 ms
  Gateway gateway(sim, network, config);
  gateway.register_function("f", 1, {dead});

  std::vector<std::string> errors;
  SimTime second_failed_at = -1;
  gateway.invoke("f", {}, [&](Result<proto::RpcResponse> r) {
    errors.push_back(r.error().message);
  });
  gateway.invoke("f", {}, [&](Result<proto::RpcResponse> r) {
    errors.push_back(r.error().message);
    second_failed_at = sim.now();
  });
  sim.run();
  ASSERT_EQ(errors.size(), 2u);
  // The queued request was shed at its 5 ms deadline — long before the
  // inflight one exhausted its retransmissions — with the overload error.
  EXPECT_NE(errors[0].find("deadline"), std::string::npos);
  EXPECT_EQ(second_failed_at, milliseconds(5));
  EXPECT_EQ(
      gateway.metrics().counter("gateway_shed_total{fn=f}").value(), 1u);
}

TEST(Gateway, RouteUpdateDuringProxyDelayIsHonored) {
  sim::Simulator sim;
  net::Network network(sim);
  EchoPair workers(sim, network);
  Gateway gateway(sim, network);
  gateway.register_function("f", 1, {workers.node[0]});
  int ok = 0;
  gateway.invoke("f", {}, [&](Result<proto::RpcResponse> r) {
    if (r.ok()) ++ok;
  });
  // The request is inside the proxy/NAT stage; an etcd-style update
  // replaces the route before it reaches the wire.
  gateway.register_function("f", 1, {workers.node[1]});
  sim.run();
  EXPECT_EQ(ok, 1);
  EXPECT_EQ(workers.hits[0], 0);  // stale worker never contacted
  EXPECT_EQ(workers.hits[1], 1);
}

TEST(Gateway, RouteVanishingDuringProxyDelayFailsCleanly) {
  sim::Simulator sim;
  net::Network network(sim);
  EchoPair workers(sim, network);
  Gateway gateway(sim, network);
  gateway.register_function("f", 1, {workers.node[0]});
  std::string error;
  gateway.invoke("f", {}, [&](Result<proto::RpcResponse> r) {
    ASSERT_FALSE(r.ok());
    error = r.error().message;
  });
  gateway.remove_worker(workers.node[0]);  // operator drains the worker
  sim.run();
  EXPECT_NE(error.find("no workers"), std::string::npos);
  EXPECT_EQ(workers.hits[0], 0);
  EXPECT_GE(gateway.metrics().counter("gateway_unroutable_total").value(), 1u);
}

TEST(HealthChecker, QuarantineProbeReinstateRoundTrip) {
  sim::Simulator sim;
  net::Network network(sim);
  EchoPair workers(sim, network);
  Gateway gateway(sim, network);
  gateway.register_function("f", 1, {workers.node[0], workers.node[1]});

  HealthConfig config;
  config.probe_interval = milliseconds(100);
  config.probe_timeout = milliseconds(30);
  config.max_failures = 2;
  HealthChecker checker(sim, network, gateway, config);
  checker.watch(workers.node[0], {});
  checker.watch(workers.node[1], {});
  NodeId recovered = kInvalidNode;
  checker.set_on_recovered([&](NodeId n) { recovered = n; });
  checker.start();

  workers.alive[0] = false;  // crash
  sim.run_until(milliseconds(400));
  EXPECT_FALSE(checker.is_healthy(workers.node[0]));
  EXPECT_TRUE(gateway.is_quarantined(workers.node[0]));
  EXPECT_EQ(checker.quarantines(), 1u);

  workers.alive[0] = true;  // recover
  sim.run_until(milliseconds(700));
  checker.stop();
  // The next successful probe reinstated the worker automatically.
  EXPECT_TRUE(checker.is_healthy(workers.node[0]));
  EXPECT_FALSE(gateway.is_quarantined(workers.node[0]));
  EXPECT_EQ(checker.recoveries(), 1u);
  EXPECT_EQ(recovered, workers.node[0]);

  // And it serves traffic again without manager intervention.
  int before = workers.hits[0];
  int ok = 0;
  for (int i = 0; i < 8; ++i) {
    gateway.invoke("f", {}, [&](Result<proto::RpcResponse> r) {
      if (r.ok()) ++ok;
    });
  }
  sim.run();
  EXPECT_EQ(ok, 8);
  EXPECT_GT(workers.hits[0], before);
}

}  // namespace
}  // namespace lnic::framework
