// Tests for the placement layer: per-lambda footprints, bundle
// splitting, and the NicFirst / Packed / Spread policies over mixed
// NIC/host pools.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "backends/backend.h"
#include "compiler/pipeline.h"
#include "framework/placement.h"
#include "kvstore/cache_server.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "workloads/lambdas.h"
#include "workloads/split.h"

namespace lnic::framework {
namespace {

// A pool of live backends in the given kind order.
struct PoolRig {
  sim::Simulator sim;
  net::Network network{sim};
  kvstore::CacheServer cache{sim, network};
  std::vector<std::unique_ptr<backends::Backend>> owned;
  std::vector<backends::Backend*> pool;

  explicit PoolRig(std::vector<backends::BackendKind> kinds) {
    for (auto kind : kinds) {
      owned.push_back(backends::make_backend(kind, sim, network));
      owned.back()->set_kv_server(cache.node());
      pool.push_back(owned.back().get());
    }
  }
};

// A Scale that blows the web server past the 16 K-word instruction
// store while leaving the other three lambdas at their standard size.
workloads::Scale oversize_web_scale() {
  workloads::Scale scale;
  scale.web_mix_rounds = 6000;
  return scale;
}

TEST(Capacity, ReportsNicStoreAndHostHeadroom) {
  PoolRig rig({backends::BackendKind::kLambdaNic,
               backends::BackendKind::kBareMetal});
  const auto nic = rig.pool[0]->capacity();
  EXPECT_TRUE(nic.on_nic);
  EXPECT_EQ(nic.instr_store_words, 16384u);
  EXPECT_GT(nic.memory_bytes, 0u);
  EXPECT_GT(nic.threads, 0u);
  const auto host = rig.pool[1]->capacity();
  EXPECT_FALSE(host.on_nic);
  EXPECT_EQ(host.instr_store_words, backends::Capacity::kUnlimitedWords);
}

TEST(Footprints, StandardBundleFitsOneNicStore) {
  const auto footprints =
      compute_footprints(workloads::make_standard_workloads());
  ASSERT_TRUE(footprints.ok()) << footprints.error().message;
  ASSERT_EQ(footprints.value().size(), 4u);
  std::uint64_t total = 0;
  for (const auto& fp : footprints.value()) {
    EXPECT_GT(fp.code_words, 0u);
    EXPECT_NE(fp.workload, kInvalidWorkload);
    total += fp.code_words;
  }
  // The paper's four-lambda program fits a single 16 K instruction
  // store even when footprints are measured one lambda at a time.
  EXPECT_LE(total, 16384u);
}

TEST(Footprints, OversizeLambdaExceedsStore) {
  const auto footprints = compute_footprints(
      workloads::make_standard_workloads(oversize_web_scale()));
  ASSERT_TRUE(footprints.ok()) << footprints.error().message;
  std::uint64_t web_words = 0;
  for (const auto& fp : footprints.value()) {
    if (fp.name == "web_server") web_words = fp.code_words;
  }
  EXPECT_GT(web_words, 16384u);
}

TEST(NicFirst, HomogeneousPoolReplicatesEverywhere) {
  PoolRig rig({backends::BackendKind::kLambdaNic,
               backends::BackendKind::kLambdaNic,
               backends::BackendKind::kLambdaNic,
               backends::BackendKind::kLambdaNic});
  const auto bundle = workloads::make_standard_workloads();
  const auto footprints = compute_footprints(bundle);
  ASSERT_TRUE(footprints.ok());
  const auto plan = NicFirstPolicy().place(snapshot_pool(rig.pool),
                                           footprints.value());
  ASSERT_TRUE(plan.ok()) << plan.error().message;
  for (const auto& [fn, assignments] : plan.value().functions) {
    ASSERT_EQ(assignments.size(), 4u) << fn;
    for (std::size_t i = 0; i < 4; ++i) {
      EXPECT_EQ(assignments[i], (PlacementAssignment{i, 1})) << fn;
    }
  }
  // Determinism: the same inputs yield the identical plan.
  const auto again = NicFirstPolicy().place(snapshot_pool(rig.pool),
                                            footprints.value());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(plan.value().functions, again.value().functions);
}

TEST(NicFirst, OversizeLambdaSpillsToHostsOnly) {
  PoolRig rig({backends::BackendKind::kLambdaNic,
               backends::BackendKind::kLambdaNic,
               backends::BackendKind::kBareMetal,
               backends::BackendKind::kContainer});
  const auto footprints = compute_footprints(
      workloads::make_standard_workloads(oversize_web_scale()));
  ASSERT_TRUE(footprints.ok());
  const auto plan = NicFirstPolicy().place(snapshot_pool(rig.pool),
                                           footprints.value());
  ASSERT_TRUE(plan.ok()) << plan.error().message;
  // The oversize web server lands on the two hosts, nothing else.
  EXPECT_FALSE(plan.value().assigns("web_server", 0));
  EXPECT_FALSE(plan.value().assigns("web_server", 1));
  EXPECT_TRUE(plan.value().assigns("web_server", 2));
  EXPECT_TRUE(plan.value().assigns("web_server", 3));
  // The standard-size lambdas stay NIC-resident.
  for (const char* fn :
       {"kv_client_get", "kv_client_set", "image_transformer"}) {
    EXPECT_TRUE(plan.value().assigns(fn, 0)) << fn;
    EXPECT_TRUE(plan.value().assigns(fn, 1)) << fn;
    EXPECT_FALSE(plan.value().assigns(fn, 2)) << fn;
    EXPECT_FALSE(plan.value().assigns(fn, 3)) << fn;
  }
}

TEST(NicFirst, OversizeLambdaWithoutHostsFails) {
  PoolRig rig({backends::BackendKind::kLambdaNic,
               backends::BackendKind::kLambdaNic});
  const auto footprints = compute_footprints(
      workloads::make_standard_workloads(oversize_web_scale()));
  ASSERT_TRUE(footprints.ok());
  const auto plan = NicFirstPolicy().place(snapshot_pool(rig.pool),
                                           footprints.value());
  EXPECT_FALSE(plan.ok());
}

TEST(Packed, CoLocatesOntoFewestNics) {
  PoolRig rig({backends::BackendKind::kLambdaNic,
               backends::BackendKind::kLambdaNic,
               backends::BackendKind::kLambdaNic});
  const auto footprints =
      compute_footprints(workloads::make_standard_workloads());
  ASSERT_TRUE(footprints.ok());
  const auto plan = PackedPolicy().place(snapshot_pool(rig.pool),
                                         footprints.value());
  ASSERT_TRUE(plan.ok()) << plan.error().message;
  // All four lambdas fit one store, so first-fit packs them onto NIC 0.
  for (const auto& [fn, assignments] : plan.value().functions) {
    ASSERT_EQ(assignments.size(), 1u) << fn;
    EXPECT_EQ(assignments[0].backend_index, 0u) << fn;
  }
}

TEST(Spread, OnePerWorkerRoundRobin) {
  PoolRig rig({backends::BackendKind::kLambdaNic,
               backends::BackendKind::kLambdaNic,
               backends::BackendKind::kLambdaNic,
               backends::BackendKind::kLambdaNic});
  const auto footprints =
      compute_footprints(workloads::make_standard_workloads());
  ASSERT_TRUE(footprints.ok());
  const auto plan = SpreadPolicy().place(snapshot_pool(rig.pool),
                                         footprints.value());
  ASSERT_TRUE(plan.ok()) << plan.error().message;
  std::vector<int> per_backend(4, 0);
  for (const auto& [fn, assignments] : plan.value().functions) {
    ASSERT_EQ(assignments.size(), 1u) << fn;
    ++per_backend[assignments[0].backend_index];
  }
  for (int count : per_backend) EXPECT_EQ(count, 1);
}

TEST(SplitBundle, FullActionSetIsIdentity) {
  const auto bundle = workloads::make_standard_workloads();
  const auto split =
      workloads::split_bundle(bundle, workloads::bundle_actions(bundle));
  EXPECT_EQ(split.lambdas.functions.size(), bundle.lambdas.functions.size());
  EXPECT_EQ(split.lambdas.objects.size(), bundle.lambdas.objects.size());
  EXPECT_EQ(split.spec.tables.size(), bundle.spec.tables.size());
}

TEST(SplitBundle, SubsetKeepsCalleesAndCompiles) {
  const auto bundle = workloads::make_standard_workloads();
  auto sub = workloads::split_bundle(bundle, {"web_server"});
  EXPECT_LT(sub.lambdas.functions.size(), bundle.lambdas.functions.size());
  EXPECT_NE(sub.lambdas.function_index("web_server"),
            microc::Program::kNoFunction);
  EXPECT_EQ(sub.lambdas.function_index("image_transformer"),
            microc::Program::kNoFunction);
  auto compiled = compiler::compile(sub.spec, std::move(sub.lambdas));
  ASSERT_TRUE(compiled.ok()) << compiled.error().message;
  EXPECT_LE(compiled.value().final_words(), 16384u);
}

}  // namespace
}  // namespace lnic::framework
