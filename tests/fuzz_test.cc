// Randomized robustness suites:
//  - random Micro-C *source* programs (loops, branches, memory) compiled
//    and executed: the frontend+verifier must accept them, execution must
//    be deterministic, and every optimization combination must preserve
//    results;
//  - random byte strings fed to the lexer/parser/deserializer: they must
//    reject garbage with errors, never crash or accept nonsense.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/rng.h"
#include "compiler/const_fold.h"
#include "compiler/dce.h"
#include "compiler/inline.h"
#include "microc/frontend.h"
#include "microc/interp.h"
#include "microc/lexer.h"
#include "microc/parser.h"
#include "microc/serialize.h"
#include "microc/verify.h"

namespace lnic::microc {
namespace {

// ------------------------------------------------- random source programs

// Emits a random arithmetic expression over the in-scope variables.
std::string random_expr(Rng& rng, const std::vector<std::string>& vars,
                        int depth) {
  if (depth <= 0 || rng.next_below(3) == 0) {
    if (!vars.empty() && rng.next_bool(0.6)) {
      return vars[rng.next_below(vars.size())];
    }
    return std::to_string(rng.next_below(100) + 1);
  }
  static const char* ops[] = {"+", "-", "*", "&", "|", "^"};
  return "(" + random_expr(rng, vars, depth - 1) + " " +
         ops[rng.next_below(6)] + " " + random_expr(rng, vars, depth - 1) +
         ")";
}

// Generates a well-formed random function with nested control flow and
// bounded loops (loop counters always terminate).
std::string random_program(Rng& rng) {
  std::ostringstream out;
  out << "global u8 mem[256];\n";
  out << "int f() {\n";
  std::vector<std::string> vars;
  const int nvars = 2 + static_cast<int>(rng.next_below(3));
  for (int i = 0; i < nvars; ++i) {
    const std::string name = "v" + std::to_string(i);
    out << "  var " << name << " = " << random_expr(rng, vars, 2) << ";\n";
    vars.push_back(name);
  }
  const int stmts = 3 + static_cast<int>(rng.next_below(6));
  for (int s = 0; s < stmts; ++s) {
    switch (rng.next_below(5)) {
      case 0:
        out << "  " << vars[rng.next_below(vars.size())] << " = "
            << random_expr(rng, vars, 2) << ";\n";
        break;
      case 1:
        out << "  if (" << random_expr(rng, vars, 1) << " % 2 == 0) { "
            << vars[rng.next_below(vars.size())] << " += "
            << random_expr(rng, vars, 1) << "; } else { "
            << vars[rng.next_below(vars.size())] << " ^= 7; }\n";
        break;
      case 2: {
        const std::string loop_var = "i" + std::to_string(s);
        out << "  for (var " << loop_var << " = 0; " << loop_var << " < "
            << (1 + rng.next_below(8)) << "; " << loop_var << " += 1) { "
            << vars[rng.next_below(vars.size())] << " += " << loop_var
            << "; }\n";
        break;
      }
      case 3:
        out << "  store8(mem, (" << random_expr(rng, vars, 1)
            << ") % 31 * 8, " << vars[rng.next_below(vars.size())] << ");\n";
        break;
      default:
        out << "  " << vars[rng.next_below(vars.size())]
            << " = load8(mem, (" << random_expr(rng, vars, 1)
            << ") % 31 * 8);\n";
        break;
    }
  }
  out << "  var acc = 0;\n";
  for (const auto& v : vars) out << "  acc ^= " << v << ";\n";
  out << "  resp_word(acc);\n  return acc;\n}\n";
  return out.str();
}

Outcome run_program(const Program& p) {
  ObjectStore store(p);
  Machine machine(p, CostModel::npu(), &store);
  machine.set_fuel(10'000'000);
  Invocation inv;
  return machine.run_function(p.function_index("f"), inv);
}

class RandomSourceTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomSourceTest, CompilesRunsDeterministicallyAndOptimizesSafely) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 7);
  const std::string source = random_program(rng);
  auto program = compile_microc(source);
  ASSERT_TRUE(program.ok()) << program.error().message << "\n" << source;

  const Outcome first = run_program(program.value());
  ASSERT_EQ(first.state, RunState::kDone) << source;
  const Outcome second = run_program(program.value());
  EXPECT_EQ(first.return_value, second.return_value);  // deterministic
  EXPECT_EQ(first.cycles, second.cycles);

  // Every optimization combination preserves the result.
  for (int mask = 1; mask < 4; ++mask) {
    Program optimized = program.value();
    if (mask & 1) {
      compiler::fold_constants(optimized);
      compiler::eliminate_dead_code(optimized);
    }
    if (mask & 2) {
      compiler::inline_functions(optimized);
      compiler::eliminate_dead_code(optimized);
    }
    ASSERT_TRUE(verify(optimized).ok()) << "mask=" << mask << "\n" << source;
    const Outcome out = run_program(optimized);
    ASSERT_EQ(out.state, RunState::kDone);
    EXPECT_EQ(out.return_value, first.return_value)
        << "mask=" << mask << "\n" << source;
    EXPECT_EQ(out.response, first.response);
  }

  // Serialization round trip preserves execution too.
  auto restored = deserialize(serialize(program.value()));
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(run_program(restored.value()).return_value, first.return_value);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSourceTest, ::testing::Range(1, 33));

// ---------------------------------------------------- garbage resilience

class GarbageInputTest : public ::testing::TestWithParam<int> {};

TEST_P(GarbageInputTest, LexerParserRejectGracefully) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 31337 + 1);
  // Printable-ish garbage, sometimes with valid-looking fragments mixed in.
  std::string input;
  const int len = 1 + static_cast<int>(rng.next_below(200));
  static const char* fragments[] = {"int ", "var ", "{", "}", "(", ")",
                                    ";",    "= ",   "f", "0x", "while"};
  for (int i = 0; i < len; ++i) {
    if (rng.next_bool(0.3)) {
      input += fragments[rng.next_below(11)];
    } else {
      input += static_cast<char>(32 + rng.next_below(95));
    }
  }
  // Must terminate and either succeed (unlikely) or return an error;
  // never crash.
  auto tokens = lex(input);
  if (!tokens.ok()) return;
  auto unit = parse(tokens.value());
  if (!unit.ok()) return;
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, GarbageInputTest, ::testing::Range(1, 25));

class GarbageFirmwareTest : public ::testing::TestWithParam<int> {};

TEST_P(GarbageFirmwareTest, DeserializerRejectsCorruptedImages) {
  // Start from a valid image and corrupt random bytes: deserialize must
  // either reject it or produce a program (which verify then screens).
  auto program = compile_microc("int f() { return 1 + 2; }");
  ASSERT_TRUE(program.ok());
  auto bytes = serialize(program.value());
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 271 + 9);
  const int corruptions = 1 + static_cast<int>(rng.next_below(8));
  for (int i = 0; i < corruptions; ++i) {
    bytes[rng.next_below(bytes.size())] ^=
        static_cast<std::uint8_t>(1 + rng.next_below(255));
  }
  auto restored = deserialize(bytes);
  if (restored.ok()) {
    // Structurally plausible: the verifier is the next gate, and the
    // interpreter's traps are the last. None of these may crash.
    (void)verify(restored.value());
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, GarbageFirmwareTest, ::testing::Range(1, 25));

}  // namespace
}  // namespace lnic::microc
