// Tests for the P4 text frontend: parsing, validation, and equivalence
// with programmatically-built MatchSpecs through the full lowering path.
#include <gtest/gtest.h>

#include "microc/frontend.h"
#include "microc/interp.h"
#include "p4/lower.h"
#include "p4/text.h"

namespace lnic::p4 {
namespace {

constexpr const char* kSpec = R"(
  parser {
    extract(workload_id);
    extract(src_node);
  }

  table web_match {
    key = { workload_id; }
    entry (1) -> web;
  }

  table kv_match {
    key = { workload_id; }
    entry (2) -> kv;
  }

  table web_routes route {
    key = { workload_id; src_node; }
    entry (1, 0) -> route_web;
    entry (1, 1) -> route_web;
  }

  control ingress {
    apply(web_match);
    apply(kv_match);
    apply(web_routes);
  }
)";

TEST(P4Text, ParsesTablesEntriesAndControlOrder) {
  auto spec = parse_p4(kSpec);
  ASSERT_TRUE(spec.ok()) << spec.error().message;
  ASSERT_EQ(spec.value().tables.size(), 3u);
  EXPECT_EQ(spec.value().tables[0].name, "web_match");
  EXPECT_FALSE(spec.value().tables[0].is_route_table);
  EXPECT_TRUE(spec.value().tables[2].is_route_table);
  EXPECT_EQ(spec.value().tables[2].entries.size(), 2u);
  EXPECT_EQ(spec.value().tables[2].key_fields.size(), 2u);
  EXPECT_EQ(spec.value().tables[0].entries[0].action_function, "web");
  EXPECT_EQ(spec.value().total_entries(), 4u);
}

TEST(P4Text, RejectsUnknownField) {
  auto r = parse_p4(R"(
    table t { key = { nonsense; } entry (1) -> f; }
    control ingress { apply(t); }
  )");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("unknown header field"), std::string::npos);
}

TEST(P4Text, RejectsArityMismatch) {
  auto r = parse_p4(R"(
    table t { key = { workload_id; src_node; } entry (1) -> f; }
    control ingress { apply(t); }
  )");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("arity"), std::string::npos);
}

TEST(P4Text, RejectsMissingControl) {
  auto r = parse_p4("table t { key = { workload_id; } entry (1) -> f; }");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("control"), std::string::npos);
}

TEST(P4Text, RejectsUnappliedTable) {
  auto r = parse_p4(R"(
    table used { key = { workload_id; } entry (1) -> f; }
    table orphan { key = { workload_id; } entry (2) -> g; }
    control ingress { apply(used); }
  )");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("never applied"), std::string::npos);
}

TEST(P4Text, RejectsApplyOfUnknownTable) {
  auto r = parse_p4("control ingress { apply(ghost); }");
  ASSERT_FALSE(r.ok());
}

TEST(P4Text, RejectsDuplicateTable) {
  auto r = parse_p4(R"(
    table t { key = { workload_id; } entry (1) -> f; }
    table t { key = { workload_id; } entry (2) -> g; }
    control ingress { apply(t); }
  )");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().message.find("duplicate"), std::string::npos);
}

TEST(P4Text, LowersAndDispatchesEndToEnd) {
  // Full source-level Match+Lambda program: Micro-C lambdas + P4 match
  // stage, lowered and executed.
  auto program = microc::compile_microc(R"(
    int web() { return 100 + hdr(op); }
    int kv() { return 200; }
  )");
  ASSERT_TRUE(program.ok());
  auto spec = parse_p4(R"(
    table m {
      key = { workload_id; }
      entry (1) -> web;
      entry (2) -> kv;
    }
    control ingress { apply(m); }
  )");
  ASSERT_TRUE(spec.ok());

  microc::Program p = std::move(program).value();
  ASSERT_TRUE(lower_match_stage(spec.value(), p, LoweringMode::kReduced).ok());

  auto dispatch = [&](WorkloadId wid, std::uint64_t op) {
    microc::ObjectStore store(p);
    microc::Machine m(p, microc::CostModel::npu(), &store);
    microc::Invocation inv;
    inv.headers.fields[microc::kHdrWorkloadId] = wid;
    inv.headers.fields[microc::kHdrOp] = op;
    inv.match_data = {1};
    return m.run(inv).return_value;
  };
  EXPECT_EQ(dispatch(1, 5), 105u);
  EXPECT_EQ(dispatch(2, 0), 200u);
  EXPECT_EQ(dispatch(3, 0), kReturnToHost);
}

TEST(P4Text, TextAndBuilderSpecsLowerIdentically) {
  auto lambdas = [] {
    return microc::compile_microc("int f() { return 7; }").value();
  };
  auto text_spec = parse_p4(R"(
    table f_match { key = { workload_id; } entry (9) -> f; }
    control ingress { apply(f_match); }
  )");
  ASSERT_TRUE(text_spec.ok());
  MatchSpec built_spec;
  Table t = make_lambda_table("f", 9);
  t.name = "f_match";
  built_spec.tables.push_back(t);

  microc::Program p1 = lambdas();
  microc::Program p2 = lambdas();
  ASSERT_TRUE(lower_match_stage(text_spec.value(), p1,
                                LoweringMode::kNaive).ok());
  ASSERT_TRUE(lower_match_stage(built_spec, p2, LoweringMode::kNaive).ok());
  EXPECT_EQ(microc::code_size(p1), microc::code_size(p2));
  EXPECT_EQ(p1.lambda_entries, p2.lambda_entries);
}

}  // namespace
}  // namespace lnic::p4
