// Integration tests for the public Cluster API: full request paths
// through gateway -> fabric -> backend -> cache across all three backend
// kinds, multi-worker balancing, etcd-mirrored routes, and fault
// tolerance end to end.
#include <gtest/gtest.h>

#include "core/cluster.h"
#include "workloads/image.h"
#include "workloads/lambdas.h"

namespace lnic::core {
namespace {

class ClusterBackendTest
    : public ::testing::TestWithParam<backends::BackendKind> {};

TEST_P(ClusterBackendTest, EndToEndWebRequest) {
  ClusterConfig config;
  config.backend = GetParam();
  config.workers = 2;
  Cluster cluster(config);
  auto bundle = workloads::make_standard_workloads();
  ASSERT_TRUE(cluster.deploy(workloads::make_standard_workloads()).ok());
  cluster.wait_until_ready();
  auto r = cluster.invoke_and_wait("web_server",
                                   workloads::encode_web_request(2));
  ASSERT_TRUE(r.ok()) << r.error().message;
  const auto& payload = r.value().payload;
  EXPECT_EQ(std::string(payload.begin() + 8, payload.end()),
            workloads::expected_web_page(bundle, 2));
}

INSTANTIATE_TEST_SUITE_P(Kinds, ClusterBackendTest,
                         ::testing::Values(backends::BackendKind::kLambdaNic,
                                           backends::BackendKind::kBareMetal,
                                           backends::BackendKind::kContainer));

TEST(Cluster, KvSetThenGetThroughGateway) {
  Cluster cluster;
  ASSERT_TRUE(cluster.deploy(workloads::make_standard_workloads()).ok());
  cluster.wait_until_ready();
  auto set = cluster.invoke_and_wait("kv_client_set",
                                     workloads::encode_kv_request(10, 1234));
  ASSERT_TRUE(set.ok());
  auto get = cluster.invoke_and_wait("kv_client_get",
                                     workloads::encode_kv_request(10));
  ASSERT_TRUE(get.ok());
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(get.value().payload[i]) << (8 * i);
  }
  EXPECT_EQ(v, 1234u);
}

TEST(Cluster, ImagePipelineEndToEnd) {
  Cluster cluster;
  ASSERT_TRUE(cluster.deploy(workloads::make_standard_workloads()).ok());
  cluster.wait_until_ready();
  const auto img = workloads::make_test_image(96, 96, 6);
  auto r = cluster.invoke_and_wait(
      "image_transformer",
      workloads::encode_image_request(img.width, img.height, img.rgba));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().payload, workloads::to_grayscale(img));
}

TEST(Cluster, RoutesMirroredIntoEtcd) {
  Cluster cluster;
  ASSERT_TRUE(cluster.deploy(workloads::make_standard_workloads()).ok());
  cluster.wait_until_ready();
  ASSERT_NE(cluster.etcd(), nullptr);
  const auto route = cluster.etcd()->get("route/web_server");
  ASSERT_TRUE(route.has_value());
  auto decoded = framework::Gateway::decode_route(*route);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().workload, workloads::kWebServerId);
  EXPECT_EQ(decoded.value().workers.size(), cluster.worker_count());
}

TEST(Cluster, BalancesAcrossWorkers) {
  ClusterConfig config;
  config.workers = 4;
  Cluster cluster(config);
  ASSERT_TRUE(cluster.deploy(workloads::make_standard_workloads()).ok());
  cluster.wait_until_ready();
  int done = 0;
  for (int i = 0; i < 40; ++i) {
    cluster.invoke("web_server", workloads::encode_web_request(0),
                   [&](Result<proto::RpcResponse> r) {
                     ASSERT_TRUE(r.ok());
                     ++done;
                   });
  }
  // Raft heartbeats keep the event queue non-empty; step until served.
  while (done < 40 && cluster.sim().step()) {
  }
  EXPECT_EQ(done, 40);
  for (std::size_t i = 0; i < cluster.worker_count(); ++i) {
    EXPECT_EQ(cluster.worker(i).completed(), 10u) << "worker " << i;
  }
}

TEST(Cluster, SurvivesPacketLossViaRetransmission) {
  ClusterConfig config;
  config.faults.drop_probability = 0.05;
  config.gateway.rpc.retransmit_timeout = milliseconds(20);
  config.gateway.rpc.max_retries = 50;
  Cluster cluster(config);
  ASSERT_TRUE(cluster.deploy(workloads::make_standard_workloads()).ok());
  cluster.wait_until_ready();
  int done = 0;
  for (int i = 0; i < 50; ++i) {
    cluster.invoke("web_server", workloads::encode_web_request(i & 3),
                   [&](Result<proto::RpcResponse> r) {
                     ASSERT_TRUE(r.ok());
                     ++done;
                   });
  }
  while (done < 50 && cluster.sim().step()) {
  }
  EXPECT_EQ(done, 50);
}

TEST(Cluster, GatewayMetricsAccumulate) {
  Cluster cluster;
  ASSERT_TRUE(cluster.deploy(workloads::make_standard_workloads()).ok());
  cluster.wait_until_ready();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(cluster
                    .invoke_and_wait("web_server",
                                     workloads::encode_web_request(0))
                    .ok());
  }
  EXPECT_EQ(cluster.gateway().latency("web_server").count(), 5u);
  // render() emits valid Prometheus exposition: label values quoted.
  const std::string rendered = cluster.gateway().metrics().render();
  EXPECT_NE(rendered.find("gateway_requests_total{fn=\"web_server\"} 5"),
            std::string::npos);
}

TEST(Cluster, DeploymentRecordMatchesTable4Inputs) {
  ClusterConfig config;
  config.backend = backends::BackendKind::kContainer;
  Cluster cluster(config);
  auto record = cluster.deploy(workloads::make_standard_workloads());
  ASSERT_TRUE(record.ok());
  EXPECT_NEAR(to_mib(record.value().artifact_bytes), 153.0, 1.0);
  EXPECT_NEAR(to_sec(record.value().startup_time), 31.7, 1.0);
}

}  // namespace
}  // namespace lnic::core
