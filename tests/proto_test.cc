// Tests for the weakly-consistent RPC client: completion, latency
// accounting, retransmission under loss, failure after max retries, and
// multi-fragment response reassembly.
#include <gtest/gtest.h>

#include <optional>

#include "net/network.h"
#include "proto/rpc.h"
#include "sim/simulator.h"

namespace lnic::proto {
namespace {

using net::Packet;
using net::PacketKind;

// A trivial echo server: replies with the request payload reversed.
struct EchoServer {
  net::Network& network;
  NodeId node;
  std::uint64_t served = 0;

  explicit EchoServer(net::Network& net) : network(net) {
    node = network.attach([this](const Packet& p) {
      if (p.kind != PacketKind::kRequest && p.kind != PacketKind::kRdmaWrite) {
        return;
      }
      ++served;
      std::vector<std::uint8_t> reply(p.payload.rbegin(), p.payload.rend());
      auto frags = net::fragment(node, p.src, PacketKind::kResponse, p.lambda,
                                 reply);
      for (auto& f : frags) network.send(std::move(f));
    });
  }
};

TEST(RpcClient, CompletesAndMeasuresLatency) {
  sim::Simulator sim;
  net::Network network(sim);
  EchoServer server(network);
  RpcClient client(sim, network);
  std::optional<RpcResponse> got;
  client.call(server.node, 1, {1, 2, 3}, [&](Result<RpcResponse> r) {
    ASSERT_TRUE(r.ok());
    got = std::move(r).value();
  });
  sim.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->payload, (std::vector<std::uint8_t>{3, 2, 1}));
  EXPECT_GT(got->latency, 0);
  EXPECT_EQ(got->retries, 0u);
  EXPECT_EQ(client.inflight(), 0u);
}

TEST(RpcClient, RetransmitsUnderLossAndSucceeds) {
  sim::Simulator sim;
  net::Network network(sim, net::LinkConfig{},
                       net::FaultConfig{.drop_probability = 0.4},
                       /*seed=*/11);
  EchoServer server(network);
  RpcConfig config;
  config.retransmit_timeout = milliseconds(5);
  config.max_retries = 50;
  RpcClient client(sim, network, config);
  int completed = 0;
  for (int i = 0; i < 50; ++i) {
    client.call(server.node, 1, {static_cast<std::uint8_t>(i)},
                [&](Result<RpcResponse> r) {
                  ASSERT_TRUE(r.ok());
                  ++completed;
                });
  }
  sim.run();
  EXPECT_EQ(completed, 50);
  EXPECT_GT(client.retransmissions(), 0u);
  EXPECT_EQ(client.failures(), 0u);
}

TEST(RpcClient, FailsAfterMaxRetries) {
  sim::Simulator sim;
  net::Network network(sim, net::LinkConfig{},
                       net::FaultConfig{.drop_probability = 1.0});
  EchoServer server(network);
  RpcConfig config;
  config.retransmit_timeout = milliseconds(1);
  config.max_retries = 3;
  RpcClient client(sim, network, config);
  bool failed = false;
  client.call(server.node, 1, {9}, [&](Result<RpcResponse> r) {
    EXPECT_FALSE(r.ok());
    failed = true;
  });
  sim.run();
  EXPECT_TRUE(failed);
  EXPECT_EQ(client.retransmissions(), 3u);
  EXPECT_EQ(client.failures(), 1u);
}

TEST(RpcClient, LargePayloadGoesAsRdmaFragments) {
  sim::Simulator sim;
  net::Network network(sim);
  int rdma_frags = 0;
  net::Network* net_ptr = &network;
  NodeId server = network.attach(nullptr);
  network.set_handler(server, [&](const Packet& p) {
    if (p.kind == PacketKind::kRdmaWrite) ++rdma_frags;
    if (p.kind == PacketKind::kRdmaWrite &&
        p.lambda.frag_index + 1 == p.lambda.frag_count) {
      Packet reply;
      reply.src = server;
      reply.dst = p.src;
      reply.kind = PacketKind::kResponse;
      reply.lambda = p.lambda;
      reply.lambda.frag_index = 0;
      reply.lambda.frag_count = 1;
      net_ptr->send(reply);
    }
  });
  RpcClient client(sim, network);
  std::vector<std::uint8_t> big(5000, 7);
  bool done = false;
  client.call(server, 4, big, [&](Result<RpcResponse> r) {
    EXPECT_TRUE(r.ok());
    done = true;
  });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(rdma_frags, 4);  // 5000 / 1400 -> 4 fragments
}

TEST(RpcClient, ReassemblesMultiFragmentResponse) {
  sim::Simulator sim;
  net::Network network(sim);
  net::Network* net_ptr = &network;
  NodeId server = network.attach(nullptr);
  std::vector<std::uint8_t> big_reply(4000);
  for (std::size_t i = 0; i < big_reply.size(); ++i) {
    big_reply[i] = static_cast<std::uint8_t>(i * 13);
  }
  network.set_handler(server, [&, server](const Packet& p) {
    if (p.kind != PacketKind::kRequest) return;
    auto frags = net::fragment(server, p.src, PacketKind::kResponse, p.lambda,
                               big_reply);
    for (auto& f : frags) net_ptr->send(std::move(f));
  });
  RpcClient client(sim, network);
  std::optional<RpcResponse> got;
  client.call(server, 2, {1}, [&](Result<RpcResponse> r) {
    ASSERT_TRUE(r.ok());
    got = std::move(r).value();
  });
  sim.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->payload, big_reply);
}

TEST(RpcClient, DuplicateResponsesIgnored) {
  sim::Simulator sim;
  net::Network network(sim);
  net::Network* net_ptr = &network;
  NodeId server = network.attach(nullptr);
  network.set_handler(server, [&, server](const Packet& p) {
    if (p.kind != PacketKind::kRequest) return;
    for (int i = 0; i < 3; ++i) {  // duplicate replies
      Packet reply;
      reply.src = server;
      reply.dst = p.src;
      reply.kind = PacketKind::kResponse;
      reply.lambda = p.lambda;
      reply.payload = {42};
      net_ptr->send(reply);
    }
  });
  RpcClient client(sim, network);
  int callbacks = 0;
  client.call(server, 1, {1}, [&](Result<RpcResponse>) { ++callbacks; });
  sim.run();
  EXPECT_EQ(callbacks, 1);
}

// Property: under any loss rate < 1 with generous retries, every request
// eventually completes (the DESIGN.md transport invariant).
class RpcLossSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(RpcLossSweepTest, AllRequestsEventuallyComplete) {
  sim::Simulator sim;
  net::Network network(sim, net::LinkConfig{},
                       net::FaultConfig{.drop_probability = GetParam()},
                       /*seed=*/23);
  EchoServer server(network);
  RpcConfig config;
  config.retransmit_timeout = milliseconds(2);
  config.max_retries = 200;
  RpcClient client(sim, network, config);
  int completed = 0;
  const int n = 30;
  for (int i = 0; i < n; ++i) {
    client.call(server.node, 1, {static_cast<std::uint8_t>(i)},
                [&](Result<RpcResponse> r) {
                  ASSERT_TRUE(r.ok());
                  ++completed;
                });
  }
  sim.run();
  EXPECT_EQ(completed, n);
}

INSTANTIATE_TEST_SUITE_P(LossRates, RpcLossSweepTest,
                         ::testing::Values(0.0, 0.05, 0.1, 0.2));

// ------------------------------------------------------ adaptive transport

TEST(RttEstimator, JacobsonKarelsUpdateAndClamp) {
  RttEstimator est;
  EXPECT_FALSE(est.has_sample());
  est.sample(microseconds(100));
  ASSERT_TRUE(est.has_sample());
  // First sample: srtt = R, rttvar = R/2, RTO = srtt + 4*rttvar = 3R.
  EXPECT_EQ(est.srtt(), microseconds(100));
  EXPECT_EQ(est.rttvar(), microseconds(50));
  EXPECT_EQ(est.rto(0, seconds(10)), microseconds(300));
  // Steady samples shrink rttvar toward zero; the clamp floors the RTO.
  for (int i = 0; i < 200; ++i) est.sample(microseconds(100));
  EXPECT_EQ(est.srtt(), microseconds(100));
  EXPECT_LT(est.rttvar(), microseconds(1));
  EXPECT_EQ(est.rto(microseconds(150), seconds(10)), microseconds(150));
  EXPECT_EQ(est.rto(0, microseconds(90)), microseconds(90));
}

TEST(RpcClient, AdaptiveRtoConvergesToMeasuredRtt) {
  sim::Simulator sim;
  net::Network network(sim);
  EchoServer server(network);
  RpcConfig config;
  config.adaptive = true;
  config.min_rto = microseconds(10);
  RpcClient client(sim, network, config);
  // Before any sample the initial (fixed) timeout applies.
  EXPECT_EQ(client.current_rto(server.node), config.retransmit_timeout);
  SimDuration measured_rtt = 0;
  int completed = 0;
  std::function<void()> next = [&]() {
    client.call(server.node, 1, {1, 2, 3}, [&](Result<RpcResponse> r) {
      ASSERT_TRUE(r.ok());
      measured_rtt = r.value().latency;
      if (++completed < 40) next();
    });
  };
  next();
  sim.run();
  ASSERT_EQ(completed, 40);
  const RttEstimator* est = client.estimator(server.node);
  ASSERT_NE(est, nullptr);
  // The estimate tracks the real RTT and the RTO collapses far below the
  // 50 ms fixed timer (but never below the measured RTT itself).
  EXPECT_NEAR(static_cast<double>(est->srtt()),
              static_cast<double>(measured_rtt),
              static_cast<double>(measured_rtt) * 0.1);
  EXPECT_LT(client.current_rto(server.node), milliseconds(1));
  EXPECT_GE(client.current_rto(server.node), measured_rtt);
  EXPECT_EQ(client.retransmissions(), 0u);
}

TEST(RpcClient, AdaptiveBackoffSpacesRetriesExponentially) {
  sim::Simulator sim;
  net::Network network(sim);
  NodeId dead = network.attach(nullptr);
  RpcConfig config;
  config.adaptive = true;
  config.retransmit_timeout = milliseconds(1);  // initial RTO
  config.max_retries = 8;
  config.max_rto = milliseconds(100);
  RpcClient client(sim, network, config);
  SimTime failed_at = -1;
  client.call(dead, 1, {9}, [&](Result<RpcResponse> r) {
    EXPECT_FALSE(r.ok());
    failed_at = sim.now();
  });
  sim.run();
  ASSERT_GE(failed_at, 0);
  EXPECT_EQ(client.retransmissions(), 8u);
  // A fixed 1 ms timer would give up after ~9 ms; doubling delays
  // (1+2+4+8+16+32+64+100+100 ms, plus jitter) spread the same retry
  // budget over hundreds of milliseconds.
  EXPECT_GT(failed_at, milliseconds(100));
  EXPECT_LT(failed_at, seconds(1));
}

TEST(RpcClient, KarnsRuleSkipsAmbiguousSamples) {
  sim::Simulator sim;
  net::Network network(sim);
  net::Network* net_ptr = &network;
  // Replies 5 ms after the *first* request only; duplicates are ignored,
  // so a response always races a retransmission.
  NodeId server = network.attach(nullptr);
  int seen = 0;
  network.set_handler(server, [&, server](const net::Packet& p) {
    if (p.kind != PacketKind::kRequest) return;
    if (seen++ > 0) return;
    net::Packet reply;
    reply.src = server;
    reply.dst = p.src;
    reply.kind = PacketKind::kResponse;
    reply.lambda = p.lambda;
    reply.payload = {1};
    sim.schedule(milliseconds(5), [net_ptr, reply] { net_ptr->send(reply); });
  });
  RpcConfig config;
  config.adaptive = true;
  config.retransmit_timeout = milliseconds(1);
  config.max_retries = 10;
  RpcClient client(sim, network, config);
  bool done = false;
  client.call(server, 1, {7}, [&](Result<RpcResponse> r) {
    ASSERT_TRUE(r.ok());
    EXPECT_GT(r.value().retries, 0u);
    done = true;
  });
  sim.run();
  ASSERT_TRUE(done);
  EXPECT_GT(client.retransmissions(), 0u);
  // The completed request was retransmitted, so its (inflated) latency
  // is ambiguous and must not have fed the estimator.
  EXPECT_EQ(client.estimator(server), nullptr);
  EXPECT_EQ(client.current_rto(server), config.retransmit_timeout);
}

TEST(RpcClient, DuplicateEmptyFragmentCannotCompleteResponse) {
  sim::Simulator sim;
  net::Network network(sim);
  net::Network* net_ptr = &network;
  // A two-fragment response whose first fragment is zero-length and
  // duplicated. The old empty-as-missing marker double-counted this and
  // completed the response with fragment 1 missing.
  NodeId server = network.attach(nullptr);
  network.set_handler(server, [&, server](const net::Packet& p) {
    if (p.kind != PacketKind::kRequest) return;
    net::Packet frag0;
    frag0.src = server;
    frag0.dst = p.src;
    frag0.kind = PacketKind::kResponse;
    frag0.lambda = p.lambda;
    frag0.lambda.frag_index = 0;
    frag0.lambda.frag_count = 2;
    net_ptr->send(frag0);
    net_ptr->send(frag0);  // duplicate of the empty fragment
    net::Packet frag1 = frag0;
    frag1.lambda.frag_index = 1;
    frag1.payload = {5, 6};
    sim.schedule(microseconds(100), [net_ptr, frag1] { net_ptr->send(frag1); });
  });
  RpcClient client(sim, network);
  std::optional<RpcResponse> got;
  client.call(server, 1, {1}, [&](Result<RpcResponse> r) {
    ASSERT_TRUE(r.ok());
    got = std::move(r).value();
  });
  // Run past the duplicates but before fragment 1: must not complete.
  sim.run_until(microseconds(50));
  EXPECT_FALSE(got.has_value());
  sim.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->payload, (std::vector<std::uint8_t>{5, 6}));
}

TEST(RpcClient, InconsistentFragCountIgnored) {
  sim::Simulator sim;
  net::Network network(sim);
  net::Network* net_ptr = &network;
  NodeId server = network.attach(nullptr);
  network.set_handler(server, [&, server](const net::Packet& p) {
    if (p.kind != PacketKind::kRequest) return;
    net::Packet frag;
    frag.src = server;
    frag.dst = p.src;
    frag.kind = PacketKind::kResponse;
    frag.lambda = p.lambda;
    frag.lambda.frag_index = 0;
    frag.lambda.frag_count = 2;
    frag.payload = {1};
    net_ptr->send(frag);
    // Claims to be the lone fragment of a 1-fragment response: conflicts
    // with the count announced above and must be dropped, as must an
    // out-of-range index.
    net::Packet liar = frag;
    liar.lambda.frag_index = 0;
    liar.lambda.frag_count = 1;
    net_ptr->send(liar);
    net::Packet oob = frag;
    oob.lambda.frag_index = 7;
    oob.payload = {9};
    net_ptr->send(oob);
    net::Packet frag1 = frag;
    frag1.lambda.frag_index = 1;
    frag1.payload = {2};
    net_ptr->send(frag1);
  });
  RpcClient client(sim, network);
  std::optional<RpcResponse> got;
  client.call(server, 1, {1}, [&](Result<RpcResponse> r) {
    ASSERT_TRUE(r.ok());
    got = std::move(r).value();
  });
  sim.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->payload, (std::vector<std::uint8_t>{1, 2}));
}

// Property: the adaptive transport keeps the completion guarantee under
// loss and reordering, while converging its RTO to the path RTT.
class AdaptiveLossSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(AdaptiveLossSweepTest, CompletesAndConvergesUnderLoss) {
  sim::Simulator sim;
  net::Network network(sim, net::LinkConfig{},
                       net::FaultConfig{.drop_probability = GetParam(),
                                        .reorder_probability = 0.1,
                                        .reorder_max_extra_delay =
                                            microseconds(200)},
                       /*seed=*/31);
  EchoServer server(network);
  RpcConfig config;
  config.adaptive = true;
  config.min_rto = microseconds(50);
  config.max_retries = 200;
  RpcClient client(sim, network, config);
  int completed = 0;
  const int n = 30;
  for (int i = 0; i < n; ++i) {
    client.call(server.node, 1, {static_cast<std::uint8_t>(i)},
                [&](Result<RpcResponse> r) {
                  ASSERT_TRUE(r.ok());
                  ++completed;
                });
  }
  sim.run();
  EXPECT_EQ(completed, n);
  EXPECT_EQ(client.failures(), 0u);
  if (GetParam() > 0.0) {
    // Clean (non-retransmitted) exchanges keep feeding the estimator, so
    // the recovery clock sits near the path RTT, not at 50 ms.
    ASSERT_NE(client.estimator(server.node), nullptr);
    EXPECT_LT(client.current_rto(server.node), milliseconds(5));
  }
}

INSTANTIATE_TEST_SUITE_P(LossRates, AdaptiveLossSweepTest,
                         ::testing::Values(0.05, 0.1, 0.2));

}  // namespace
}  // namespace lnic::proto
