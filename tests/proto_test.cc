// Tests for the weakly-consistent RPC client: completion, latency
// accounting, retransmission under loss, failure after max retries, and
// multi-fragment response reassembly.
#include <gtest/gtest.h>

#include <optional>

#include "net/network.h"
#include "proto/rpc.h"
#include "sim/simulator.h"

namespace lnic::proto {
namespace {

using net::Packet;
using net::PacketKind;

// A trivial echo server: replies with the request payload reversed.
struct EchoServer {
  net::Network& network;
  NodeId node;
  std::uint64_t served = 0;

  explicit EchoServer(net::Network& net) : network(net) {
    node = network.attach([this](const Packet& p) {
      if (p.kind != PacketKind::kRequest && p.kind != PacketKind::kRdmaWrite) {
        return;
      }
      ++served;
      std::vector<std::uint8_t> reply(p.payload.rbegin(), p.payload.rend());
      auto frags = net::fragment(node, p.src, PacketKind::kResponse, p.lambda,
                                 reply);
      for (auto& f : frags) network.send(std::move(f));
    });
  }
};

TEST(RpcClient, CompletesAndMeasuresLatency) {
  sim::Simulator sim;
  net::Network network(sim);
  EchoServer server(network);
  RpcClient client(sim, network);
  std::optional<RpcResponse> got;
  client.call(server.node, 1, {1, 2, 3}, [&](Result<RpcResponse> r) {
    ASSERT_TRUE(r.ok());
    got = std::move(r).value();
  });
  sim.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->payload, (std::vector<std::uint8_t>{3, 2, 1}));
  EXPECT_GT(got->latency, 0);
  EXPECT_EQ(got->retries, 0u);
  EXPECT_EQ(client.inflight(), 0u);
}

TEST(RpcClient, RetransmitsUnderLossAndSucceeds) {
  sim::Simulator sim;
  net::Network network(sim, net::LinkConfig{},
                       net::FaultConfig{.drop_probability = 0.4},
                       /*seed=*/11);
  EchoServer server(network);
  RpcConfig config;
  config.retransmit_timeout = milliseconds(5);
  config.max_retries = 50;
  RpcClient client(sim, network, config);
  int completed = 0;
  for (int i = 0; i < 50; ++i) {
    client.call(server.node, 1, {static_cast<std::uint8_t>(i)},
                [&](Result<RpcResponse> r) {
                  ASSERT_TRUE(r.ok());
                  ++completed;
                });
  }
  sim.run();
  EXPECT_EQ(completed, 50);
  EXPECT_GT(client.retransmissions(), 0u);
  EXPECT_EQ(client.failures(), 0u);
}

TEST(RpcClient, FailsAfterMaxRetries) {
  sim::Simulator sim;
  net::Network network(sim, net::LinkConfig{},
                       net::FaultConfig{.drop_probability = 1.0});
  EchoServer server(network);
  RpcConfig config;
  config.retransmit_timeout = milliseconds(1);
  config.max_retries = 3;
  RpcClient client(sim, network, config);
  bool failed = false;
  client.call(server.node, 1, {9}, [&](Result<RpcResponse> r) {
    EXPECT_FALSE(r.ok());
    failed = true;
  });
  sim.run();
  EXPECT_TRUE(failed);
  EXPECT_EQ(client.retransmissions(), 3u);
  EXPECT_EQ(client.failures(), 1u);
}

TEST(RpcClient, LargePayloadGoesAsRdmaFragments) {
  sim::Simulator sim;
  net::Network network(sim);
  int rdma_frags = 0;
  net::Network* net_ptr = &network;
  NodeId server = network.attach(nullptr);
  network.set_handler(server, [&](const Packet& p) {
    if (p.kind == PacketKind::kRdmaWrite) ++rdma_frags;
    if (p.kind == PacketKind::kRdmaWrite &&
        p.lambda.frag_index + 1 == p.lambda.frag_count) {
      Packet reply;
      reply.src = server;
      reply.dst = p.src;
      reply.kind = PacketKind::kResponse;
      reply.lambda = p.lambda;
      reply.lambda.frag_index = 0;
      reply.lambda.frag_count = 1;
      net_ptr->send(reply);
    }
  });
  RpcClient client(sim, network);
  std::vector<std::uint8_t> big(5000, 7);
  bool done = false;
  client.call(server, 4, big, [&](Result<RpcResponse> r) {
    EXPECT_TRUE(r.ok());
    done = true;
  });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(rdma_frags, 4);  // 5000 / 1400 -> 4 fragments
}

TEST(RpcClient, ReassemblesMultiFragmentResponse) {
  sim::Simulator sim;
  net::Network network(sim);
  net::Network* net_ptr = &network;
  NodeId server = network.attach(nullptr);
  std::vector<std::uint8_t> big_reply(4000);
  for (std::size_t i = 0; i < big_reply.size(); ++i) {
    big_reply[i] = static_cast<std::uint8_t>(i * 13);
  }
  network.set_handler(server, [&, server](const Packet& p) {
    if (p.kind != PacketKind::kRequest) return;
    auto frags = net::fragment(server, p.src, PacketKind::kResponse, p.lambda,
                               big_reply);
    for (auto& f : frags) net_ptr->send(std::move(f));
  });
  RpcClient client(sim, network);
  std::optional<RpcResponse> got;
  client.call(server, 2, {1}, [&](Result<RpcResponse> r) {
    ASSERT_TRUE(r.ok());
    got = std::move(r).value();
  });
  sim.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->payload, big_reply);
}

TEST(RpcClient, DuplicateResponsesIgnored) {
  sim::Simulator sim;
  net::Network network(sim);
  net::Network* net_ptr = &network;
  NodeId server = network.attach(nullptr);
  network.set_handler(server, [&, server](const Packet& p) {
    if (p.kind != PacketKind::kRequest) return;
    for (int i = 0; i < 3; ++i) {  // duplicate replies
      Packet reply;
      reply.src = server;
      reply.dst = p.src;
      reply.kind = PacketKind::kResponse;
      reply.lambda = p.lambda;
      reply.payload = {42};
      net_ptr->send(reply);
    }
  });
  RpcClient client(sim, network);
  int callbacks = 0;
  client.call(server, 1, {1}, [&](Result<RpcResponse>) { ++callbacks; });
  sim.run();
  EXPECT_EQ(callbacks, 1);
}

// Property: under any loss rate < 1 with generous retries, every request
// eventually completes (the DESIGN.md transport invariant).
class RpcLossSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(RpcLossSweepTest, AllRequestsEventuallyComplete) {
  sim::Simulator sim;
  net::Network network(sim, net::LinkConfig{},
                       net::FaultConfig{.drop_probability = GetParam()},
                       /*seed=*/23);
  EchoServer server(network);
  RpcConfig config;
  config.retransmit_timeout = milliseconds(2);
  config.max_retries = 200;
  RpcClient client(sim, network, config);
  int completed = 0;
  const int n = 30;
  for (int i = 0; i < n; ++i) {
    client.call(server.node, 1, {static_cast<std::uint8_t>(i)},
                [&](Result<RpcResponse> r) {
                  ASSERT_TRUE(r.ok());
                  ++completed;
                });
  }
  sim.run();
  EXPECT_EQ(completed, n);
}

INSTANTIATE_TEST_SUITE_P(LossRates, RpcLossSweepTest,
                         ::testing::Values(0.0, 0.05, 0.1, 0.2));

}  // namespace
}  // namespace lnic::proto
