// google-benchmark micro-benchmarks of the reproduction's own machinery:
// event-queue throughput, interpreter speed, compiler pipeline cost,
// Raft commit latency (wall-clock of the *simulator*, not simulated
// time). These guard against performance regressions in the harness.
#include <benchmark/benchmark.h>

#include "compiler/pipeline.h"
#include "microc/interp.h"
#include "net/network.h"
#include "raft/raft.h"
#include "sim/simulator.h"
#include "workloads/lambdas.h"

using namespace lnic;

static void BM_EventQueueScheduleDispatch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    for (int i = 0; i < 1000; ++i) {
      sim.schedule(i, [] {});
    }
    benchmark::DoNotOptimize(sim.run());
  }
}
BENCHMARK(BM_EventQueueScheduleDispatch);

static void BM_InterpreterWebLambda(benchmark::State& state) {
  auto bundle = workloads::make_standard_workloads();
  auto compiled = compiler::compile(bundle.spec, std::move(bundle.lambdas));
  const auto& program = compiled.value().program;
  microc::ObjectStore store(program);
  microc::Machine machine(program, microc::CostModel::npu(), &store);
  microc::Invocation inv;
  inv.headers.fields[microc::kHdrWorkloadId] = workloads::kWebServerId;
  inv.match_data = {1};
  std::uint64_t instructions = 0;
  for (auto _ : state) {
    auto out = machine.run(inv);
    instructions += out.instructions;
    benchmark::DoNotOptimize(out.return_value);
  }
  state.counters["instrs/req"] =
      static_cast<double>(instructions) /
      static_cast<double>(state.iterations());
}
BENCHMARK(BM_InterpreterWebLambda);

static void BM_CompilerFullPipeline(benchmark::State& state) {
  for (auto _ : state) {
    auto bundle = workloads::make_standard_workloads();
    auto compiled = compiler::compile(bundle.spec, std::move(bundle.lambdas));
    benchmark::DoNotOptimize(compiled.ok());
  }
}
BENCHMARK(BM_CompilerFullPipeline);

static void BM_NetworkPacketDelivery(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    net::Network network(sim);
    const NodeId a = network.attach(nullptr);
    const NodeId b = network.attach([](const net::Packet&) {});
    for (int i = 0; i < 1000; ++i) {
      net::Packet p;
      p.src = a;
      p.dst = b;
      p.payload = std::vector<std::uint8_t>(64);
      network.send(std::move(p));
    }
    sim.run();
  }
}
BENCHMARK(BM_NetworkPacketDelivery);

static void BM_RaftElectAndCommit(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    raft::Cluster cluster(sim, 3);
    cluster.start();
    sim.run_until(seconds(2));
    auto* leader = cluster.leader();
    if (leader != nullptr) {
      for (int i = 0; i < 20; ++i) {
        (void)leader->propose(
            raft::Command{raft::Command::Op::kPut, "k", "v"});
      }
    }
    sim.run_until(seconds(3));
    benchmark::DoNotOptimize(cluster.leader());
  }
}
BENCHMARK(BM_RaftElectAndCommit);

BENCHMARK_MAIN();
