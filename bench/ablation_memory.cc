// Ablation (§5.1 memory stratification): web-server service time with
// the compiler's object placement versus the naïve everything-in-EMEM
// layout, plus the per-region latency sweep that explains it.
#include <cstdio>

#include "compiler/pipeline.h"
#include "microc/interp.h"
#include "workloads/lambdas.h"

using namespace lnic;

namespace {

std::uint64_t web_cycles(const microc::Program& program) {
  microc::ObjectStore store(program);
  microc::Machine machine(program, microc::CostModel::npu(), &store);
  microc::Invocation inv;
  inv.headers.fields[microc::kHdrWorkloadId] = workloads::kWebServerId;
  inv.match_data = {1};
  const auto out = machine.run(inv);
  return out.cycles;
}

}  // namespace

int main() {
  std::printf("\n=== Ablation: memory stratification on/off ===\n\n");

  compiler::Options with;        // all passes
  compiler::Options without;     // stratification off, rest on
  without.run_stratification = false;

  auto b1 = workloads::make_standard_workloads();
  auto opt = compiler::compile(b1.spec, std::move(b1.lambdas), with);
  auto b2 = workloads::make_standard_workloads();
  auto flat = compiler::compile(b2.spec, std::move(b2.lambdas), without);
  if (!opt.ok() || !flat.ok()) return 1;

  const auto npu = microc::CostModel::npu();
  const auto c_opt = web_cycles(opt.value().program);
  const auto c_flat = web_cycles(flat.value().program);
  std::printf("  web-server service time: EMEM-only %.2f us -> stratified "
              "%.2f us  (%.2fx)\n",
              to_us(npu.cycles_to_duration(c_flat)),
              to_us(npu.cycles_to_duration(c_opt)),
              static_cast<double>(c_flat) / c_opt);
  std::printf("  code size: EMEM-only %llu words -> stratified %llu words\n",
              static_cast<unsigned long long>(flat.value().final_words()),
              static_cast<unsigned long long>(opt.value().final_words()));

  std::printf("\n  object placements (stratified):\n");
  for (const auto& obj : opt.value().program.objects) {
    if (obj.name.rfind("__match", 0) == 0) continue;
    std::printf("    %-20s %8llu B  -> %s\n", obj.name.c_str(),
                static_cast<unsigned long long>(obj.size),
                microc::to_string(obj.region));
  }

  std::printf("\n  per-region access cost (NPU cycles/read): local=%u ctm=%u "
              "imem=%u emem=%u\n",
              npu.region_read[0], npu.region_read[1], npu.region_read[2],
              npu.region_read[3]);
  return 0;
}
