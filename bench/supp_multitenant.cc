// Supplementary figure (ours): multi-tenant NPU grid under SLO pressure.
//
// Three scenarios on tenant-namespaced routes ("tenant/function") with
// DRR scheduling over the shared SmartNIC's lambda threads:
//
//  1. Noisy neighbor — victim (weight 10) and aggressor (weight 1)
//     share one WFQ NIC; the aggressor offers far more than 10x its
//     weight share while the victim trickles along. DRR must hold the
//     victim's p99 within 25% of an isolated baseline run (the
//     acceptance bar tools/check_perf.py enforces).
//  2. Tenant burst — gold/silver/bronze tenants weighted 4:2:1 under a
//     shared Zipf + on-off arrival process; per-tenant goodput and p99
//     show the weights carving the saturated card.
//  3. Scale-to-zero — an autoscaled tenant parked at zero replicas takes
//     a burst: requests fail until the SLO-signal-driven autoscaler
//     re-provisions the route after a modeled cold start, then the tail
//     collapses to warm latency.
//
// Every scenario emits per-tenant SLO rows into BENCH_supp_multitenant
// .json; results are bit-reproducible for a fixed (seed, shards) pair.
// Usage: supp_multitenant [--smoke] [--shards N]
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "framework/autoscaler.h"
#include "framework/gateway.h"
#include "loadgen/generator.h"

using namespace lnic;
using namespace lnic::bench;

namespace {

struct Params {
  SimDuration window = milliseconds(400);
  double victim_rps = 1500.0;
  double aggressor_rps = 300000.0;
  double burst_base_rps = 3000.0;
  double burst_peak_rps = 30000.0;
  SimDuration deadline = milliseconds(2);
  std::uint64_t seed = 23;
  unsigned shards = 1;
};

/// Small WFQ card: eight lambda threads, deep queues — easy for one
/// tenant to saturate, so the scheduler (not spare capacity) provides
/// isolation, while a victim arrival's wait for a free thread (service
/// is non-preemptive) stays a fraction of one service time.
nicsim::NicConfig small_wfq_card() {
  nicsim::NicConfig config;
  config.islands = 1;
  config.cores_per_island = 4;
  config.reserved_cores = 2;
  config.threads_per_core = 4;
  config.dispatch = nicsim::DispatchPolicy::kWfq;
  config.max_queue_depth = 1000000;
  return config;
}

/// One shared SmartNIC serving a web farm, each workload owned by a
/// tenant with its own weighted route. Master stack on shard 0, the
/// card on shard 1 when sharded (same split core::Cluster uses).
struct SharedCardRig {
  sim::ShardedSimulator sharded;
  net::Network network;
  std::unique_ptr<kvstore::CacheServer> cache;
  std::unique_ptr<backends::LambdaNicBackend> backend;
  std::unique_ptr<framework::Gateway> gateway;
  std::vector<TenantId> tenants;  // by farm index

  SharedCardRig(const Params& params, const std::vector<std::string>& names,
                const std::vector<std::uint32_t>& weights)
      : sharded(params.shards), network(sharded) {
    sim::Simulator& sim = sharded.shard(0);
    cache = std::make_unique<kvstore::CacheServer>(sim, network);
    const unsigned worker_shard = sharded.shards() > 1 ? 1 : 0;
    network.set_attach_shard(worker_shard);
    backend = std::make_unique<backends::LambdaNicBackend>(
        sharded.shard(worker_shard), network, small_wfq_card());
    network.set_attach_shard(0);
    backend->set_kv_server(cache->node());

    framework::GatewayConfig config;
    config.rpc.retransmit_timeout = seconds(600);  // queueing, not loss
    gateway = std::make_unique<framework::Gateway>(sim, network, config);

    // One combined bundle: SmartNic::deploy replaces the whole firmware,
    // so co-resident tenants must flash together. Tenancy binds before
    // the deploy so quota admission would see it.
    nicsim::TenantWeights drr;
    for (std::size_t i = 0; i < names.size(); ++i) {
      const WorkloadId wid = static_cast<WorkloadId>(i + 1);
      const TenantId tid = gateway->register_tenant(names[i]);
      tenants.push_back(tid);
      backend->set_tenant_of(wid, tid);
      drr[tid] = weights[i];
      gateway->register_replicas(
          names[i] + "/web", wid,
          {framework::Replica{backend->node(), 1,
                              static_cast<std::uint8_t>(backend->kind())}},
          tid);
    }
    backend->nic().set_drr_weights(drr);
    if (!backend
             ->deploy(workloads::make_web_farm(
                 static_cast<std::uint32_t>(names.size())))
             .ok()) {
      std::fprintf(stderr, "supp_multitenant: deploy failed\n");
    }
    sharded.run_until(seconds(40));  // firmware flash window
  }

  sim::Simulator& sim() { return sharded.shard(0); }
};

loadgen::LoadGenConfig tenant_load(const Params& params,
                                   loadgen::ArrivalSpec arrivals,
                                   std::uint64_t seed_offset) {
  loadgen::LoadGenConfig lg;
  lg.arrivals = arrivals;
  lg.duration = params.window;
  lg.seed = params.seed + seed_offset;
  lg.slo.deadline = params.deadline;
  return lg;
}

std::unique_ptr<loadgen::LoadGenerator> make_tenant_generator(
    SharedCardRig& rig, const Params& params, const std::string& function,
    loadgen::ArrivalSpec arrivals, std::uint64_t seed_offset) {
  std::vector<loadgen::FunctionProfile> profiles = {
      loadgen::FunctionProfile{function, loadgen::PayloadDist::fixed_size(8)}};
  return std::make_unique<loadgen::LoadGenerator>(
      rig.sim(), tenant_load(params, arrivals, seed_offset),
      std::move(profiles),
      loadgen::gateway_sink(*rig.gateway,
                            [](const loadgen::Request& request) {
                              return workloads::encode_web_request(request.id &
                                                                   3);
                            }));
}

void add_tenant_row(BenchSummary& summary, const std::string& prefix,
                    const loadgen::SloReport& report,
                    const std::string& function) {
  for (const auto& row : report.per_function) {
    if (row.function != function) continue;
    summary.add(prefix + "/offered", static_cast<double>(row.offered),
                "count");
    summary.add(prefix + "/goodput", row.goodput_rps, "rps");
    summary.add(prefix + "/violations",
                static_cast<double>(row.violations), "count");
    summary.add(prefix + "/p99", row.p99_ms, "ms");
    return;
  }
}

// ------------------------------------------------------ noisy neighbor

void run_noisy_neighbor(const Params& params, BenchSummary& summary) {
  std::printf("\n-- noisy neighbor (victim weight 10, aggressor weight 1)\n");

  // Isolated baseline: the victim alone on an identical card.
  double isolated_p99 = 0.0;
  {
    SharedCardRig rig(params, {"victim", "aggressor"}, {10, 1});
    auto victim = make_tenant_generator(
        rig, params, "victim/web",
        loadgen::ArrivalSpec::poisson(params.victim_rps), 1);
    const SimTime start = rig.sim().now();
    victim->start();
    rig.sharded.run_until(start + params.window);
    victim->stop();
    rig.sharded.run();
    const auto report = victim->slo().report(params.window);
    isolated_p99 = report.p99_ms;
    add_tenant_row(summary, "noisy/victim_isolated", report, "victim/web");
  }

  // Shared run: the aggressor floods open-loop far beyond its share.
  SharedCardRig rig(params, {"victim", "aggressor"}, {10, 1});
  auto victim = make_tenant_generator(
      rig, params, "victim/web",
      loadgen::ArrivalSpec::poisson(params.victim_rps), 1);
  auto aggressor = make_tenant_generator(
      rig, params, "aggressor/web",
      loadgen::ArrivalSpec::poisson(params.aggressor_rps), 2);
  const SimTime start = rig.sim().now();
  victim->start();
  aggressor->start();
  rig.sharded.run_until(start + params.window);
  victim->stop();
  aggressor->stop();
  // Card service rate while the aggressor kept it saturated.
  const double capacity_rps =
      static_cast<double>(rig.backend->nic().stats().requests_completed) /
      to_sec(params.window);
  rig.sharded.run_until(start + params.window + seconds(5));  // drain victim

  const auto victim_report = victim->slo().report(params.window);
  const auto aggr_report = aggressor->slo().report(params.window);
  add_tenant_row(summary, "noisy/victim_shared", victim_report, "victim/web");
  add_tenant_row(summary, "noisy/aggressor_shared", aggr_report,
                 "aggressor/web");

  // How oversubscribed was the aggressor relative to its DRR share?
  const double aggressor_share = capacity_rps * 1.0 / 11.0;
  const double saturation =
      aggressor_share > 0 ? aggr_report.offered_rps / aggressor_share : 0.0;
  summary.add("noisy/aggressor_offered_over_share", saturation, "x");
  summary.add("noisy/victim_p99_ratio",
              isolated_p99 > 0 ? victim_report.p99_ms / isolated_p99 : 0.0,
              "x");

  std::printf("  victim p99 isolated %.3f ms  shared %.3f ms  (ratio %.3f)\n",
              isolated_p99, victim_report.p99_ms,
              isolated_p99 > 0 ? victim_report.p99_ms / isolated_p99 : 0.0);
  std::printf("  aggressor offered %.0f rps = %.1fx its weight share of the "
              "card\n",
              aggr_report.offered_rps, saturation);
}

// -------------------------------------------------------- tenant burst

void run_tenant_burst(const Params& params, BenchSummary& summary) {
  std::printf("\n-- tenant burst (gold 4 : silver 2 : bronze 1, Zipf + "
              "on-off)\n");
  const std::vector<std::string> names = {"gold", "silver", "bronze"};
  SharedCardRig rig(params, names, {4, 2, 1});

  // One Zipf-skewed arrival process spread across the three tenants
  // (gold hottest), bursting well past the card's capacity.
  std::vector<loadgen::FunctionProfile> profiles;
  for (const auto& name : names) {
    profiles.push_back(loadgen::FunctionProfile{
        name + "/web", loadgen::PayloadDist::fixed_size(8)});
  }
  loadgen::LoadGenConfig lg = tenant_load(
      params,
      loadgen::ArrivalSpec::on_off(params.burst_peak_rps,
                                   params.burst_base_rps, milliseconds(20),
                                   milliseconds(30)),
      3);
  lg.zipf_s = 0.9;
  loadgen::LoadGenerator generator(
      rig.sim(), lg, std::move(profiles),
      loadgen::gateway_sink(*rig.gateway,
                            [](const loadgen::Request& request) {
                              return workloads::encode_web_request(request.id &
                                                                   3);
                            }));
  const SimTime start = rig.sim().now();
  generator.start();
  rig.sharded.run_until(start + params.window);
  generator.stop();
  rig.sharded.run_until(start + params.window + seconds(5));

  const auto report = generator.slo().report(params.window);
  for (const auto& name : names) {
    add_tenant_row(summary, "burst/" + name, report, name + "/web");
  }
  // Scheduler-side view: completions per tenant class out of the DRR.
  const auto& by_class = rig.backend->nic().stats().completed_by_class;
  for (std::size_t i = 0; i < names.size(); ++i) {
    const auto it = by_class.find(rig.tenants[i]);
    summary.add("burst/" + names[i] + "/nic_completed",
                it == by_class.end() ? 0.0
                                     : static_cast<double>(it->second),
                "count");
  }
  for (const auto& row : report.per_function) {
    std::printf("  %-12s offered %7llu  goodput %7.0f rps  p99 %8.3f ms\n",
                row.function.c_str(),
                static_cast<unsigned long long>(row.offered), row.goodput_rps,
                row.p99_ms);
  }
}

// ------------------------------------------------------- scale-to-zero

void run_scale_to_zero(const Params& params, BenchSummary& summary) {
  std::printf("\n-- scale-to-zero cold start (autoscaler, SLO signal)\n");
  SharedCardRig rig(params, {"idlecorp"}, {1});
  sim::Simulator& sim = rig.sim();
  framework::Gateway& gateway = *rig.gateway;
  const std::string fn = "idlecorp/web";
  const TenantId tid = rig.tenants[0];
  const NodeId node = rig.backend->node();

  // The rig registered the route; the scaler owns it from here (it
  // starts the tenant parked at zero).
  const SimDuration cold_start = milliseconds(50);  // container-ish wake
  SimTime route_up_at = 0;
  std::uint32_t live_replicas = 1;
  auto provision = [&](const std::string&, std::uint32_t replicas) {
    if (replicas == 0 && live_replicas > 0) {
      gateway.remove_worker(node);
      live_replicas = 0;
    } else if (replicas > 0 && live_replicas == 0) {
      // Cold start: the route comes back only after the wake delay.
      sim.schedule(cold_start, [&, replicas] {
        gateway.register_replicas(
            fn, 1,
            {framework::Replica{
                node, 1, static_cast<std::uint8_t>(rig.backend->kind())}},
            tid);
        if (route_up_at == 0) route_up_at = sim.now();
        live_replicas = replicas;
      });
    } else {
      live_replicas = replicas;
    }
  };

  framework::AutoscalerConfig cfg;
  cfg.evaluation_period = milliseconds(20);
  cfg.target_rps_per_replica = 2000.0;
  cfg.target_p99_ms = to_ms(params.deadline);
  cfg.min_replicas = 0;  // scale-to-zero
  cfg.max_replicas = 4;
  cfg.scale_down_evals = 3;
  cfg.scale_down_cooldown = milliseconds(150);
  framework::Autoscaler scaler(sim, gateway, cfg, provision);
  scaler.track(fn);  // provisions the floor: zero — route removed

  auto generator = make_tenant_generator(
      rig, params, fn, loadgen::ArrivalSpec::poisson(4000.0), 4);
  scaler.set_signal(loadgen::slo_signal_source(generator->slo()));
  scaler.start();

  // Idle head, then the burst arrives at a scaled-to-zero tenant.
  rig.sharded.run_until(sim.now() + milliseconds(100));
  const SimTime burst_at = sim.now();
  generator->start();
  rig.sharded.run_until(burst_at + params.window);
  generator->stop();
  // Quiet tail: hysteresis + cooldown release the replicas again.
  rig.sharded.run_until(burst_at + params.window + seconds(1));
  scaler.stop();
  rig.sharded.run();

  const auto report = generator->slo().report(params.window);
  const double cold_ms =
      route_up_at > 0 ? to_ms(route_up_at - burst_at) : -1.0;
  add_tenant_row(summary, "scalezero/idlecorp", report, fn);
  summary.add("scalezero/cold_failures",
              static_cast<double>(report.failed), "count");
  summary.add("scalezero/time_to_route_ms", cold_ms, "ms");
  summary.add("scalezero/final_replicas",
              static_cast<double>(scaler.replicas(fn)), "count");
  summary.add("scalezero/scale_events",
              static_cast<double>(scaler.scale_events()), "count");

  std::printf("  burst at parked tenant: %llu cold failures, route up "
              "after %.1f ms\n",
              static_cast<unsigned long long>(report.failed), cold_ms);
  std::printf("  warm p99 %.3f ms, final replicas %u (scale events %llu)\n",
              report.p99_ms, scaler.replicas(fn),
              static_cast<unsigned long long>(scaler.scale_events()));
}

}  // namespace

int main(int argc, char** argv) {
  Params params;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      params.window = milliseconds(150);
      params.aggressor_rps = 250000.0;
      params.burst_peak_rps = 15000.0;
    }
  }
  params.shards = shards_from_args(argc, argv);

  print_header("Supplementary: multi-tenant NPU grid (DRR + quotas + SLO "
               "autoscaling)");
  std::printf("  window %.0f ms, deadline %.1f ms, seed %llu, shards %u\n",
              to_ms(params.window), to_ms(params.deadline),
              static_cast<unsigned long long>(params.seed), params.shards);

  BenchSummary summary("supp_multitenant", params.seed, params.shards);
  run_noisy_neighbor(params, summary);
  run_tenant_burst(params, summary);
  run_scale_to_zero(params, summary);

  std::printf("\n  DRR turns the shared card into a weighted grid: the\n"
              "  aggressor's backlog stays in the aggressor's queue, the\n"
              "  victim's p99 tracks its isolated baseline, and a parked\n"
              "  tenant pays exactly one cold start before the SLO loop\n"
              "  holds its tail at warm latency.\n");
  return 0;
}
