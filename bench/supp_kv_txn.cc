// Supplementary figure (ours): transactional NIC-resident KV store.
//
// Sweeps the TxnStore (NIC-cached B+-tree over simulated host memory,
// strict 2PL) along the axes the SmartNIC-transactions literature plots:
//
//  1. YCSB A-F x {NO_WAIT, WAIT_DIE} x Zipf {uniform, 0.99} at a fixed
//     NIC node-cache size: abort rate and commit p50/p99 per cell. The
//     read-only mix (C) must never abort; the skewed write mixes must
//     abort strictly more than their uniform twins.
//  2. NIC cache-size sweep {0, 64, 256, 2048 nodes} on YCSB B at Zipf
//     0.99: hit ratio must be 0 at capacity 0 (the host-backend
//     baseline) and monotonically non-decreasing in capacity, with the
//     commit tail shrinking as pages stop crossing PCIe.
//  3. TPC-C-lite new-order x protocol x {1, 8} warehouses: fewer
//     warehouses concentrate district RMWs, so contention (and WAIT_DIE
//     waiting) rises as warehouses shrink.
//
// Load is open-loop Poisson (loadgen::ArrivalSpec) from a client on
// shard 0; the store island lives on shard 1 when sharded, so every
// request and every page writeback crosses the conservative-sync
// boundary. Results are bit-reproducible for a fixed (seed, shards)
// pair and land in BENCH_supp_kv_txn.json for tools/check_perf.py.
// Usage: supp_kv_txn [--smoke] [--shards N]
#include <cstdio>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "kvstore/txn.h"
#include "kvstore/workload.h"
#include "loadgen/arrival.h"

using namespace lnic;
using namespace lnic::bench;

namespace {

struct Params {
  std::uint64_t ycsb_txns = 2000;
  std::uint64_t tpcc_txns = 800;
  double ycsb_rate_rps = 150000.0;
  double tpcc_rate_rps = 30000.0;
  std::size_t records = 1 << 14;
  std::size_t cache_nodes = 256;
  std::uint64_t seed = 29;
  unsigned shards = 1;
};

/// One store cell: client on shard 0, the TxnStore island (store node,
/// host memory, RDMA QP) on shard 1 when sharded — the same split the
/// other benches use, so requests and page traffic cross the
/// conservative-sync boundary both ways.
struct KvRig {
  sim::ShardedSimulator sharded;
  net::Network network;
  std::unique_ptr<kvstore::TxnStore> store;

  KvRig(const Params& params, const kvstore::TxnStoreConfig& config)
      : sharded(params.shards), network(sharded) {
    const unsigned island = sharded.shards() > 1 ? 1 : 0;
    network.set_attach_shard(island);
    store = std::make_unique<kvstore::TxnStore>(sharded.shard(island),
                                                network, config);
    network.set_attach_shard(0);
  }
};

struct CellResult {
  std::uint64_t committed = 0;      // transactions that reached commit
  std::uint64_t aborted_final = 0;  // retry budget exhausted
  std::uint64_t abort_attempts = 0; // aborted attempts incl. retries
  double abort_rate = 0.0;          // aborts / (commits + aborts)
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double hit_ratio = 0.0;
  std::uint64_t host_reads = 0;
  std::uint64_t lock_waits = 0;
};

/// Drives `n_txns` open-loop Poisson transactions from `next()` through
/// the store's networked kKvRequest path and drains the rig.
CellResult run_cell(const Params& params,
                    const kvstore::TxnStoreConfig& config,
                    const std::function<void(kvstore::TxnStore*)>& populate,
                    const std::function<kvstore::TxnRequest()>& next,
                    std::uint64_t n_txns, double rate_rps) {
  KvRig rig(params, config);
  populate(rig.store.get());

  sim::Simulator& client_sim = rig.sharded.shard(0);
  std::map<RequestId, SimTime> sent_at;
  Sampler commit_latency;
  CellResult out;

  const NodeId client = rig.network.attach(
      [&](const net::Packet& p) {
        if (p.kind != net::PacketKind::kKvResponse) return;
        auto it = sent_at.find(p.lambda.request_id);
        if (it == sent_at.end()) return;
        const double latency_ns =
            static_cast<double>(client_sim.now() - it->second);
        sent_at.erase(it);
        if (!p.payload.empty() &&
            p.payload[0] ==
                static_cast<std::uint8_t>(kvstore::TxnStatus::kCommitted)) {
          commit_latency.add(latency_ns);
          ++out.committed;
        } else {
          ++out.aborted_final;
        }
      },
      &client_sim);

  auto arrivals = loadgen::make_arrivals(
      loadgen::ArrivalSpec::poisson(rate_rps), params.seed);
  std::uint64_t issued = 0;
  std::function<void()> send_next = [&] {
    if (issued >= n_txns) return;
    net::Packet p;
    p.src = client;
    p.dst = rig.store->node();
    p.kind = net::PacketKind::kKvRequest;
    p.lambda.workload_id = kvstore::TxnStore::kOpTxn;
    p.lambda.request_id = ++issued;
    p.payload = kvstore::TxnStore::encode_txn(next());
    sent_at[p.lambda.request_id] = client_sim.now();
    rig.network.send(std::move(p));
    client_sim.schedule(arrivals->next_gap(), send_next);
  };
  client_sim.schedule(arrivals->next_gap(), send_next);
  rig.sharded.run();

  const auto& stats = rig.store->stats();
  out.abort_attempts = stats.aborts;
  const std::uint64_t attempts = stats.commits + stats.aborts;
  out.abort_rate = attempts == 0
                       ? 0.0
                       : static_cast<double>(stats.aborts) /
                             static_cast<double>(attempts);
  out.p50_ms = commit_latency.empty() ? 0.0
                                      : commit_latency.median() / 1e6;
  out.p99_ms = commit_latency.empty() ? 0.0 : commit_latency.p99() / 1e6;
  out.hit_ratio = rig.store->cache_stats().hit_ratio();
  out.host_reads = rig.store->host_stats().reads;
  out.lock_waits = stats.lock_waits;
  return out;
}

void add_cell(BenchSummary& summary, const std::string& prefix,
              const CellResult& r) {
  summary.add(prefix + "/commits", static_cast<double>(r.committed), "txns");
  summary.add(prefix + "/aborts", static_cast<double>(r.abort_attempts),
              "attempts");
  summary.add(prefix + "/abort_rate", r.abort_rate, "fraction");
  summary.add(prefix + "/p50", r.p50_ms, "ms");
  summary.add(prefix + "/p99", r.p99_ms, "ms");
  summary.add(prefix + "/hit_ratio", r.hit_ratio, "fraction");
}

void print_cell(const std::string& label, const CellResult& r) {
  std::printf(
      "  %-24s commits %6llu  aborts %6llu  rate %5.3f  "
      "p50 %7.3f ms  p99 %7.3f ms  hit %5.3f\n",
      label.c_str(), static_cast<unsigned long long>(r.committed),
      static_cast<unsigned long long>(r.abort_attempts), r.abort_rate,
      r.p50_ms, r.p99_ms, r.hit_ratio);
}

const char* zipf_label(double s) { return s == 0.0 ? "z00" : "z99"; }

}  // namespace

int main(int argc, char** argv) {
  Params params;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      params.ycsb_txns = 500;
      params.tpcc_txns = 250;
    }
  }
  params.shards = shards_from_args(argc, argv);

  BenchSummary summary("supp_kv_txn", params.seed, params.shards);
  const kvstore::LockProtocol protocols[] = {kvstore::LockProtocol::kNoWait,
                                             kvstore::LockProtocol::kWaitDie};

  // ------------------------------------------------ 1. YCSB A-F sweep
  print_header("YCSB A-F x protocol x skew (cache " +
               std::to_string(params.cache_nodes) + " nodes)");
  std::map<std::string, CellResult> ycsb_cells;
  for (const auto proto : protocols) {
    for (const double zipf_s : {0.0, 0.99}) {
      for (const auto mix :
           {kvstore::YcsbMix::kA, kvstore::YcsbMix::kB, kvstore::YcsbMix::kC,
            kvstore::YcsbMix::kD, kvstore::YcsbMix::kE,
            kvstore::YcsbMix::kF}) {
        kvstore::TxnStoreConfig config;
        config.protocol = proto;
        config.nic_cache_nodes = params.cache_nodes;
        kvstore::YcsbConfig wconfig;
        wconfig.mix = mix;
        wconfig.records = params.records;
        wconfig.zipf_s = zipf_s;
        wconfig.seed = params.seed;
        auto workload = std::make_shared<kvstore::YcsbWorkload>(wconfig);
        const CellResult r = run_cell(
            params, config,
            [&](kvstore::TxnStore* store) { workload->populate(store); },
            [workload] { return workload->next(); }, params.ycsb_txns,
            params.ycsb_rate_rps);
        const std::string prefix =
            std::string("ycsb/") + kvstore::to_string(mix) + "/" +
            kvstore::to_string(proto) + "/" + zipf_label(zipf_s);
        ycsb_cells[prefix] = r;
        add_cell(summary, prefix, r);
        print_cell(prefix, r);
        if (r.committed == 0) {
          return bench_fail(prefix + ": no transaction committed");
        }
        if (mix == kvstore::YcsbMix::kC && r.abort_attempts != 0) {
          return bench_fail(prefix +
                            ": read-only YCSB C aborted transactions");
        }
      }
    }
  }
  // Contention self-check: the skewed write-heavy mix must conflict
  // strictly more than its uniform twin under both protocols.
  for (const auto proto : protocols) {
    const std::string base = std::string("ycsb/A/") + kvstore::to_string(proto);
    const CellResult& uniform = ycsb_cells[base + "/z00"];
    const CellResult& skewed = ycsb_cells[base + "/z99"];
    if (skewed.abort_rate <= uniform.abort_rate) {
      return bench_fail(base + ": zipf 0.99 abort rate " +
                        std::to_string(skewed.abort_rate) +
                        " not above uniform " +
                        std::to_string(uniform.abort_rate));
    }
  }

  // ---------------------------------------------- 2. NIC cache sweep
  print_header("NIC node-cache sweep (YCSB B, zipf 0.99, NO_WAIT)");
  double last_hit = -1.0;
  for (const std::size_t cache_nodes : {std::size_t{0}, std::size_t{64},
                                        std::size_t{256}, std::size_t{2048}}) {
    kvstore::TxnStoreConfig config;
    config.protocol = kvstore::LockProtocol::kNoWait;
    config.nic_cache_nodes = cache_nodes;
    kvstore::YcsbConfig wconfig;
    wconfig.mix = kvstore::YcsbMix::kB;
    wconfig.records = params.records;
    wconfig.zipf_s = 0.99;
    wconfig.seed = params.seed;
    auto workload = std::make_shared<kvstore::YcsbWorkload>(wconfig);
    const CellResult r = run_cell(
        params, config,
        [&](kvstore::TxnStore* store) { workload->populate(store); },
        [workload] { return workload->next(); }, params.ycsb_txns,
        params.ycsb_rate_rps);
    const std::string prefix = "cache/" + std::to_string(cache_nodes);
    add_cell(summary, prefix, r);
    summary.add(prefix + "/host_reads", static_cast<double>(r.host_reads),
                "reads");
    print_cell(prefix, r);
    if (cache_nodes == 0 && r.hit_ratio != 0.0) {
      return bench_fail("cache/0 hit ratio nonzero — host baseline leaked "
                        "into the NIC cache");
    }
    if (r.hit_ratio < last_hit) {
      return bench_fail(prefix + ": hit ratio " +
                        std::to_string(r.hit_ratio) +
                        " fell below smaller cache's " +
                        std::to_string(last_hit));
    }
    last_hit = r.hit_ratio;
  }

  // ------------------------------------------------ 3. TPC-C-lite
  print_header("TPC-C-lite new-order x protocol x warehouses");
  for (const auto proto : protocols) {
    for (const std::uint32_t warehouses : {1u, 8u}) {
      kvstore::TxnStoreConfig config;
      config.protocol = proto;
      config.nic_cache_nodes = params.cache_nodes;
      config.max_retries = 16;  // district hot spot needs headroom
      kvstore::TpccLiteConfig wconfig;
      wconfig.warehouses = warehouses;
      wconfig.seed = params.seed;
      auto workload = std::make_shared<kvstore::TpccLiteWorkload>(wconfig);
      const CellResult r = run_cell(
          params, config,
          [&](kvstore::TxnStore* store) { workload->populate(store); },
          [workload] { return workload->next_order(); }, params.tpcc_txns,
          params.tpcc_rate_rps);
      const std::string prefix = std::string("tpcc/w") +
                                 std::to_string(warehouses) + "/" +
                                 kvstore::to_string(proto);
      add_cell(summary, prefix, r);
      summary.add(prefix + "/lock_waits", static_cast<double>(r.lock_waits),
                  "waits");
      print_cell(prefix, r);
      if (r.committed == 0) {
        return bench_fail(prefix + ": no new-order committed");
      }
    }
  }

  std::printf(
      "\nAll cells committed work; YCSB C stayed abort-free, skewed "
      "YCSB A out-conflicted uniform under both protocols, and the NIC "
      "cache hit ratio rose monotonically with capacity.\n");
  return 0;
}
