// Ablation (§4.2.1 D1): the NIC's shipped work-conserving uniform
// dispatcher versus λ-NIC's weighted-fair-queuing across workloads.
//
// Two tenants saturate a deliberately small card with equal offered
// load; tenant A holds WFQ weight 3, tenant B weight 1. Under uniform
// FIFO dispatch both get ~50% of the card; under WFQ completions track
// the 3:1 weights — the mechanism λ-NIC uses to route requests between
// threads (§4.2.1).
#include <cstdio>
#include <functional>

#include "bench/harness.h"

using namespace lnic;
using namespace lnic::bench;

namespace {

struct Shares {
  double share_a = 0.0;
  double p99_a_ms = 0.0;
  double p99_b_ms = 0.0;
};

Shares run(nicsim::DispatchPolicy policy) {
  sim::Simulator sim;
  net::Network network(sim);
  nicsim::NicConfig config = backends::lambda_nic_config();
  config.islands = 1;
  config.cores_per_island = 3;
  config.reserved_cores = 2;  // one lambda core
  config.threads_per_core = 4;
  config.dispatch = policy;
  config.max_queue_depth = 1u << 20;
  nicsim::SmartNic nic(sim, network, config);
  nic.set_drr_weights({{1, 3}, {2, 1}});

  auto bundle = workloads::make_web_farm(2);
  auto compiled = compiler::compile(bundle.spec, std::move(bundle.lambdas));
  if (!compiled.ok()) return {};
  (void)nic.deploy(std::move(compiled).value());
  sim.run_until(seconds(16));

  proto::RpcConfig rpc;
  rpc.retransmit_timeout = seconds(600);
  proto::RpcClient client(sim, network, rpc);

  std::uint64_t done[2] = {0, 0};
  Sampler lat[2];
  // Unbounded closed-loop senders; both tenants stay backlogged for the
  // whole measurement window.
  std::function<void(int)> issue = [&](int t) {
    client.call(nic.node(), static_cast<WorkloadId>(t + 1),
                workloads::encode_web_request(0),
                [&, t](Result<proto::RpcResponse> r) {
                  if (r.ok()) {
                    ++done[t];
                    lat[t].add(static_cast<double>(r.value().latency));
                  }
                  issue(t);
                });
  };
  for (int c = 0; c < 48; ++c) issue(0);
  for (int c = 0; c < 48; ++c) issue(1);

  sim.run_until(sim.now() + seconds(1));
  Shares s;
  s.share_a = static_cast<double>(done[0]) /
              static_cast<double>(done[0] + done[1]);
  s.p99_a_ms = lat[0].p99() / 1e6;
  s.p99_b_ms = lat[1].p99() / 1e6;
  return s;
}

}  // namespace

int main() {
  print_header("Ablation: uniform dispatch vs WFQ (weights 3:1, saturated)");
  const Shares uniform = run(nicsim::DispatchPolicy::kUniformRandom);
  const Shares wfq = run(nicsim::DispatchPolicy::kWfq);
  std::printf("\n  %-18s %14s %12s %12s\n", "policy", "tenant-A share",
              "A p99", "B p99");
  std::printf("  %-18s %13.1f%% %10.3fms %10.3fms\n", "uniform (shipped)",
              uniform.share_a * 100, uniform.p99_a_ms, uniform.p99_b_ms);
  std::printf("  %-18s %13.1f%% %10.3fms %10.3fms\n", "wfq (D1)",
              wfq.share_a * 100, wfq.p99_a_ms, wfq.p99_b_ms);
  std::printf("\n  WFQ tracks the 3:1 weights (75%% / 25%%); uniform FIFO "
              "splits the card evenly regardless of weights.\n");
  return 0;
}
