// Table 4: factors affecting startup times — workload artifact size and
// time from launch to serving the first request (§6.4). Paper's rows:
//   workload size (MiB): 11.0 | 17.0 | 153.0
//   startup time (s):    19.8 |  5.0 |  31.7
#include <cstdio>

#include "backends/backend.h"
#include "bench/harness.h"
#include "core/cluster.h"
#include "workloads/lambdas.h"

using namespace lnic;

int main() {
  std::printf("\n=== Table 4: factors affecting startup times ===\n");

  backends::StartupProfile profiles[3];
  const backends::BackendKind kinds[] = {
      backends::BackendKind::kLambdaNic, backends::BackendKind::kBareMetal,
      backends::BackendKind::kContainer};
  for (int k = 0; k < 3; ++k) {
    sim::Simulator sim;
    net::Network network(sim);
    auto backend = backends::make_backend(kinds[k], sim, network);
    profiles[k] = backend->startup_profile();
  }

  std::printf("\n  %-22s %12s %12s %12s\n", "", "lambda-nic", "bare-metal",
              "container");
  std::printf("  %-22s %11.1fM %11.1fM %11.1fM   (paper: 11.0 / 17.0 / 153.0)\n",
              "workload size (MiB)", to_mib(profiles[0].artifact_bytes),
              to_mib(profiles[1].artifact_bytes),
              to_mib(profiles[2].artifact_bytes));
  std::printf("  %-22s %11.1fs %11.1fs %11.1fs   (paper: 19.8 / 5.0 / 31.7)\n",
              "startup time (s)", to_sec(profiles[0].startup_time),
              to_sec(profiles[1].startup_time),
              to_sec(profiles[2].startup_time));

  // End-to-end check through the framework: deployment records carry the
  // same phases the cluster actually waits for.
  core::ClusterConfig config;
  config.backend = backends::BackendKind::kLambdaNic;
  config.workers = 1;
  core::Cluster cluster(config);
  auto record = cluster.deploy(workloads::make_standard_workloads());
  if (record.ok()) {
    std::printf("\n  deployment record (lambda-nic): artifact=%.1f MiB, "
                "startup=%.1f s\n",
                to_mib(record.value().artifact_bytes),
                to_sec(record.value().startup_time));
  }

  bench::BenchSummary summary("table4_startup", config.seed);
  for (int k = 0; k < 3; ++k) {
    const std::string backend = backends::to_string(kinds[k]);
    summary.add(backend + "/artifact", to_mib(profiles[k].artifact_bytes),
                "MiB");
    summary.add(backend + "/startup", to_sec(profiles[k].startup_time), "s");
  }
  return 0;
}
