// Figure 6: ECDF of request latencies when executing a single workload
// instance in isolation — one warm lambda per backend, closed-loop
// single-threaded sender (§6.3.1).
//
// Paper's operating points: λ-NIC beats containers by ~880x and bare
// metal by ~30x in mean latency for the web server and key-value client,
// and by ~5x / ~3x for the data-intensive image transformer; 5-24x
// better p99 than bare metal.
#include <cstdio>

#include "bench/harness.h"

using namespace lnic;
using namespace lnic::bench;

int main(int argc, char** argv) {
  const unsigned shards = shards_from_args(argc, argv);
  const bool adaptive = adaptive_from_args(argc, argv);
  print_header("Figure 6: latency ECDF, single lambda in isolation");
  BenchSummary summary("fig6_isolation_latency", /*seed=*/1, shards);

  const auto cases = standard_cases(/*web=*/3000, /*kv=*/3000, /*image=*/120);
  const backends::BackendKind kinds[] = {
      backends::BackendKind::kLambdaNic, backends::BackendKind::kBareMetal,
      backends::BackendKind::kContainer};

  for (const auto& test : cases) {
    std::printf("\n-- %s --\n", test.name.c_str());
    Sampler per_backend[3];
    for (int k = 0; k < 3; ++k) {
      BackendRig rig(kinds[k], /*worker_threads=*/56, shards, adaptive);
      per_backend[k] = rig.run_closed_loop(test, /*concurrency=*/1);
      print_latency_row(backends::to_string(kinds[k]), per_backend[k]);
      const std::string cell =
          test.name + "/" + backends::to_string(kinds[k]);
      summary.add(cell + "/mean", per_backend[k].mean() / 1e6, "ms");
      summary.add(cell + "/p99", per_backend[k].p99() / 1e6, "ms");
    }
    std::printf("  ECDF (ms):\n");
    for (int k = 0; k < 3; ++k) {
      print_ecdf_ms(backends::to_string(kinds[k]), per_backend[k]);
    }
    const double nic = per_backend[0].mean();
    std::printf("  mean improvement: vs bare-metal %.1fx, vs container %.1fx\n",
                per_backend[1].mean() / nic, per_backend[2].mean() / nic);
    std::printf("  p99  improvement: vs bare-metal %.1fx, vs container %.1fx\n",
                per_backend[1].p99() / per_backend[0].p99(),
                per_backend[2].p99() / per_backend[0].p99());
  }
  return 0;
}
