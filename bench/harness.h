// Shared experiment harness for the paper-reproduction benches.
//
// Each bench binary builds one of these rigs per (backend, workload)
// cell, drives closed-loop load through an RpcClient (the gateway-side
// sender of Fig. 2), and reports latency/throughput in the same units
// the paper plots. Simulated time means results are deterministic and
// independent of the machine running the bench.
#pragma once

#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "backends/backend.h"
#include "common/flightrec.h"
#include "common/stats.h"
#include "common/types.h"
#include "kvstore/cache_server.h"
#include "net/network.h"
#include "proto/rpc.h"
#include "sim/sharded.h"
#include "sim/simulator.h"
#include "workloads/image.h"
#include "workloads/lambdas.h"

namespace lnic::bench {

/// Produces the request payload for the i-th request of a workload.
using PayloadFn = std::function<std::vector<std::uint8_t>(std::uint64_t i)>;

struct WorkloadCase {
  std::string name;       // "Web Server", "Key-Value Client", ...
  WorkloadId workload;
  PayloadFn payload;
  std::uint64_t requests; // total requests per measurement
};

/// The three benchmark workloads with paper-faithful payloads (§6.2).
/// `image_side` controls the image transformer's input (512 -> 1 MiB).
std::vector<WorkloadCase> standard_cases(std::uint64_t web_requests,
                                         std::uint64_t kv_requests,
                                         std::uint64_t image_requests,
                                         std::uint32_t image_side = 512);

/// Per-request processing time of the (serialized) framework gateway.
/// Bounds aggregate throughput exactly as the paper's Go gateway does;
/// spent *before* the request's latency clock starts (the paper measures
/// from gateway send to response, §6.3.1).
constexpr SimDuration kGatewayProxyTime = microseconds(17);

/// Parses `--shards N` (or `--shards=N`) from a bench's argv; returns
/// `fallback` when absent. Every bench records the value in its
/// BENCH_*.json so check_perf.py compares like-for-like.
unsigned shards_from_args(int argc, char** argv, unsigned fallback = 1);

/// Parses `--adaptive` from a bench's argv: EOT-based adaptive window
/// extension for sharded runs (sim/sharded.h). Off by default so every
/// existing invocation replays byte-for-byte.
bool adaptive_from_args(int argc, char** argv);

class BackendRig {
 public:
  /// With shards > 1 the client keeps shard 0 and the backend + its
  /// cache form an island on shard 1, so every request crosses the
  /// conservative-sync boundary both ways. shards = 1 is byte-identical
  /// to the classic single-engine rig. `adaptive` turns on EOT window
  /// extension (the cache is declared local-only; the client and
  /// backend talk across the boundary and stay remote-capable).
  BackendRig(backends::BackendKind kind, std::uint32_t worker_threads = 56,
             unsigned shards = 1, bool adaptive = false);

  /// Closed-loop measurement: `concurrency` independent senders, each
  /// issuing the next request when its previous one completes, until
  /// `total` requests finish. Returns per-request latencies (ns).
  Sampler run_closed_loop(const WorkloadCase& test, std::uint32_t concurrency);

  /// Requests per simulated second over the measurement window of the
  /// last run_closed_loop call.
  double last_throughput_rps() const { return last_throughput_; }

  backends::Backend& backend() { return *backend_; }
  kvstore::CacheServer& cache() { return *cache_; }
  sim::Simulator& sim() { return sharded_.shard(0); }
  sim::ShardedSimulator& sharded() { return sharded_; }

  /// Deploys a custom bundle instead of the standard four lambdas.
  void redeploy(workloads::WorkloadBundle bundle);

  /// Closed-loop load across several workloads, issued round-robin (the
  /// §6.3.2 contention experiment). Returns pooled latencies.
  Sampler run_round_robin(const std::vector<WorkloadId>& workloads,
                          const PayloadFn& payload, std::uint32_t concurrency,
                          std::uint64_t total_requests);

 private:
  sim::ShardedSimulator sharded_;
  net::Network network_;
  std::unique_ptr<backends::Backend> backend_;
  std::unique_ptr<kvstore::CacheServer> cache_;
  std::unique_ptr<proto::RpcClient> client_;
  SimTime gateway_free_at_ = 0;
  double last_throughput_ = 0.0;
};

// ---------------------------------------------------------------- output

inline void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Failure exit for benches with a self-check: prints the reason plus
/// the flight recorder's last-anomalies ring (the always-on context for
/// "what went wrong just before"), then returns the nonzero exit code
/// for main() to propagate.
inline int bench_fail(const std::string& why) {
  std::fprintf(stderr, "\nBENCH FAILURE: %s\n%s", why.c_str(),
               flightrec::FlightRecorder::global().dump().c_str());
  return 1;
}

/// ECDF printed at fixed fractions, in milliseconds (Fig. 6/8 format).
void print_ecdf_ms(const std::string& label, const Sampler& latencies);

/// Mean/median/p99 row in milliseconds.
void print_latency_row(const std::string& label, const Sampler& latencies);

/// Machine-readable results next to the human tables: collects named
/// scalars and writes them as BENCH_<bench>.json in the working
/// directory, so sweeps can diff runs without scraping stdout. Written
/// on destruction (or an explicit write()).
class BenchSummary {
 public:
  explicit BenchSummary(std::string bench, std::uint64_t seed = 1,
                        unsigned shards = 1);
  ~BenchSummary();

  void add(const std::string& metric, double value, const std::string& unit);

  /// "BENCH_<bench>.json"
  std::string path() const;
  void write();

 private:
  struct Entry {
    std::string metric;
    double value;
    std::string unit;
  };
  std::string bench_;
  std::uint64_t seed_;
  unsigned shards_;
  std::vector<Entry> entries_;
  bool written_ = false;
};

}  // namespace lnic::bench
