// Ablation (§7 "Accelerating other forms of workloads"): "λ-NIC can
// provide strict bounds on tail latency and throughput, by running the
// gateway directly on a SmartNIC."
//
// Compares the framework gateway as (a) the testbed's single Go process
// (one serialized ~17 us proxy stage — the Table 2 bottleneck) versus
// (b) a gateway lambda on a SmartNIC: ~2 us of NPU work with hundreds of
// threads, so proxying parallelizes. Backend workers are λ-NIC in both
// cases; only the gateway placement changes.
#include <cstdio>
#include <functional>

#include "bench/harness.h"
#include "sim/resource.h"

using namespace lnic;
using namespace lnic::bench;

namespace {

struct RunResult {
  double rps;
  double mean_added_ms;  // gateway entry -> backend send
};

RunResult run(bool nic_gateway, std::uint32_t senders, std::uint64_t total) {
  sim::Simulator sim;
  net::Network network(sim);
  nicsim::SmartNic nic(sim, network, backends::lambda_nic_config());
  kvstore::CacheServer cache(sim, network);
  nic.set_kv_server(cache.node());
  auto bundle = workloads::make_standard_workloads();
  auto compiled = compiler::compile(bundle.spec, std::move(bundle.lambdas));
  if (!compiled.ok()) return {};
  (void)nic.deploy(std::move(compiled).value());
  sim.run_until(seconds(16));

  proto::RpcConfig rpc;
  rpc.retransmit_timeout = seconds(600);
  proto::RpcClient client(sim, network, rpc);

  // Gateway stage: host = 1 server x 17 us; NIC = 384 threads x 2 us.
  const std::uint32_t gw_units = nic_gateway ? 384 : 1;
  const SimDuration gw_service =
      nic_gateway ? microseconds(2) : microseconds(17);
  sim::ServerPool gateway(sim, gw_units);

  std::uint64_t issued = 0, completed = 0;
  Sampler added;
  std::function<void()> issue = [&]() {
    if (issued >= total) return;
    const std::uint64_t i = issued++;
    const SimTime entered = sim.now();
    gateway.submit(gw_service, [&, i, entered]() {
      added.add(static_cast<double>(sim.now() - entered));
      client.call(nic.node(), workloads::kWebServerId,
                  workloads::encode_web_request(i & 3),
                  [&](Result<proto::RpcResponse>) {
                    ++completed;
                    issue();
                  });
    });
  };
  const SimTime start = sim.now();
  for (std::uint32_t c = 0; c < senders; ++c) issue();
  sim.run();
  return RunResult{static_cast<double>(completed) / to_sec(sim.now() - start),
                   added.mean() / 1e6};
}

}  // namespace

int main() {
  print_header("Ablation: gateway on the host vs on a SmartNIC (§7)");
  std::printf("\n  %-26s %12s %16s\n", "gateway placement", "req/s",
              "gw delay (mean)");
  for (const std::uint32_t senders : {56u, 224u}) {
    const RunResult host = run(false, senders, 40000);
    const RunResult nic = run(true, senders, 40000);
    std::printf("  host Go process @%3u snd %12.0f %13.3f ms\n", senders,
                host.rps, host.mean_added_ms);
    std::printf("  SmartNIC lambda @%3u snd %12.0f %13.3f ms\n", senders,
                nic.rps, nic.mean_added_ms);
  }
  std::printf("\n  The serialized host gateway caps the system at ~58k req/s "
              "and its queue grows with offered load; the NIC-resident "
              "gateway proxies in parallel, pushing the bottleneck back to "
              "the workers.\n");
  return 0;
}
