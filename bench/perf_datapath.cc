// Wall-clock throughput and byte-copy accounting of the packet datapath.
//
// Two scenarios:
//  1. Fragmented RPC echo — an RpcClient sends 64 KiB bodies to an echo
//     node; each request fragments into ~47 RDMA-write packets, the echo
//     reassembles them with coalesce() and fragments the body back.
//     Reports wall-clock packets/sec plus copy_stats(): bytes physically
//     copied vs bytes handed off as buffer views. The pre-buffer datapath
//     copied the payload at every one of those handoffs, so
//     `baseline_bytes_copied` (= copied + shared) is what the same run
//     used to memcpy, and `copy_reduction_x` is the measured saving.
//  2. End-to-end cluster — open-loop load through gateway + SmartNIC
//     workers (the supp_traffic_mix topology, shrunk); reports wall-clock
//     simulator events/sec and the same copy accounting over a full
//     gateway/RPC/NIC/KV round trip.
//
// Wall-clock rates vary by machine; the byte counters and packet counts
// are deterministic and are what CI checks.
//
// Usage: perf_datapath [--smoke]   (smoke: fewer rounds, for CI)
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <vector>

#include "bench/harness.h"
#include "common/buffer.h"
#include "framework/gateway.h"
#include "loadgen/generator.h"
#include "net/network.h"
#include "net/packet.h"
#include "proto/rpc.h"

namespace lnic::bench {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

double reduction_x(const CopyStats& s) {
  const double baseline =
      static_cast<double>(s.bytes_copied + s.bytes_shared);
  // A fully zero-copy run has bytes_copied == 0; clamp the denominator
  // so the factor stays finite ("at least this much").
  return baseline / static_cast<double>(s.bytes_copied ? s.bytes_copied : 1);
}

void report_copies(BenchSummary& out, const char* prefix,
                   const CopyStats& s) {
  std::printf("    bytes copied %llu (%llu ops), shared zero-copy %llu "
              "(%llu ops)  ->  %.0fx fewer bytes copied\n",
              static_cast<unsigned long long>(s.bytes_copied),
              static_cast<unsigned long long>(s.copies),
              static_cast<unsigned long long>(s.bytes_shared),
              static_cast<unsigned long long>(s.shares), reduction_x(s));
  out.add(std::string(prefix) + "_bytes_copied",
          static_cast<double>(s.bytes_copied), "bytes");
  out.add(std::string(prefix) + "_bytes_shared",
          static_cast<double>(s.bytes_shared), "bytes");
  out.add(std::string(prefix) + "_baseline_bytes_copied",
          static_cast<double>(s.bytes_copied + s.bytes_shared), "bytes");
  out.add(std::string(prefix) + "_copy_reduction_x", reduction_x(s), "x");
}

/// Reassembles fragmented requests and echoes the body back, the way a
/// worker's RDMA receive path does.
class EchoNode {
 public:
  explicit EchoNode(net::Network& network) : network_(network) {
    node_ = network_.attach([this](const net::Packet& p) { on_packet(p); });
  }

  NodeId node() const { return node_; }

 private:
  struct Reassembly {
    std::vector<net::BufferView> frags;
    std::uint32_t received = 0;
  };

  void on_packet(const net::Packet& p) {
    if (p.kind != net::PacketKind::kRequest &&
        p.kind != net::PacketKind::kRdmaWrite) {
      return;
    }
    Reassembly& re = inflight_[p.lambda.request_id];
    if (re.frags.empty()) re.frags.resize(p.lambda.frag_count);
    re.frags[p.lambda.frag_index] = p.payload;
    if (++re.received < p.lambda.frag_count) return;

    const net::BufferView body = coalesce(re.frags);
    inflight_.erase(p.lambda.request_id);
    for (net::Packet& frag :
         net::fragment(node_, p.src, net::PacketKind::kResponse, p.lambda,
                       body)) {
      network_.send(std::move(frag));
    }
  }

  net::Network& network_;
  NodeId node_ = 0;
  std::map<RequestId, Reassembly> inflight_;
};

void fragmented_rpc(BenchSummary& out, std::uint64_t rounds) {
  sim::Simulator sim;
  net::Network network(sim);
  EchoNode echo(network);
  proto::RpcClient client(sim, network,
                          proto::RpcConfig{.retransmit_timeout = seconds(10)});

  constexpr std::size_t kBody = 64 * 1024;
  std::uint64_t completed = 0;
  std::uint64_t body_bytes_ok = 0;

  reset_copy_stats();
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < rounds; ++i) {
    // Fresh body per request, adopted into a Buffer with no byte copy —
    // exactly what a producer (gateway or loadgen encoder) does.
    std::vector<std::uint8_t> body(kBody,
                                   static_cast<std::uint8_t>(i & 0xFF));
    client.call(echo.node(), /*workload=*/1, std::move(body),
                [&](Result<proto::RpcResponse> r) {
                  if (r.ok()) {
                    ++completed;
                    body_bytes_ok += r.value().payload.size();
                  }
                });
    sim.run();
  }
  const double wall = seconds_since(t0);
  const CopyStats stats = copy_stats();

  const std::uint64_t frags_per_dir =
      (kBody + net::kMaxPayload - 1) / net::kMaxPayload;
  const std::uint64_t packets = network.packets_sent();
  std::printf("  fragmented-rpc: %llu echoes of %zu KiB (%llu frags each "
              "way), %.0f packets/sec wall-clock\n",
              static_cast<unsigned long long>(completed), kBody / 1024,
              static_cast<unsigned long long>(frags_per_dir),
              static_cast<double>(packets) / wall);
  report_copies(out, "rpc", stats);
  out.add("rpc_completed", static_cast<double>(completed), "requests");
  out.add("rpc_body_bytes_echoed", static_cast<double>(body_bytes_ok),
          "bytes");
  out.add("rpc_packets", static_cast<double>(packets), "packets");
  out.add("rpc_packets_per_sec", static_cast<double>(packets) / wall,
          "packets/s");
}

void cluster_run(BenchSummary& out, SimDuration window) {
  sim::Simulator sim;
  net::Network network(sim);
  kvstore::CacheServer cache(sim, network);

  std::vector<std::unique_ptr<backends::Backend>> workers;
  std::vector<NodeId> nodes;
  for (int i = 0; i < 2; ++i) {
    workers.push_back(
        backends::make_backend(backends::BackendKind::kLambdaNic, sim,
                               network));
    workers.back()->set_kv_server(cache.node());
    if (!workers.back()->deploy(workloads::make_standard_workloads()).ok()) {
      std::fprintf(stderr, "perf_datapath: deploy failed\n");
      return;
    }
    nodes.push_back(workers.back()->node());
  }
  sim.run_until(seconds(40));  // firmware flash

  framework::Gateway gateway(sim, network);
  gateway.register_function(loadgen::function_name(0),
                            workloads::kWebServerId, nodes);

  loadgen::LoadGenConfig lg;
  lg.arrivals = loadgen::ArrivalSpec::poisson(4000.0);
  lg.duration = window;
  lg.seed = 17;
  loadgen::LoadGenerator generator(
      sim, lg, loadgen::uniform_functions(1),
      loadgen::gateway_sink(gateway, [](const loadgen::Request& request) {
        return workloads::encode_web_request(request.id & 3);
      }));

  reset_copy_stats();
  const std::uint64_t events_before = sim.events_dispatched();
  const SimTime start = sim.now();
  const auto t0 = Clock::now();
  generator.start();
  sim.run_until(start + window);
  generator.stop();
  sim.run();
  const double wall = seconds_since(t0);
  const std::uint64_t events = sim.events_dispatched() - events_before;
  const CopyStats stats = copy_stats();

  std::printf("  cluster: %llu sim events in %.3f s wall (%.0f events/sec), "
              "%llu packets\n",
              static_cast<unsigned long long>(events), wall,
              static_cast<double>(events) / wall,
              static_cast<unsigned long long>(network.packets_sent()));
  report_copies(out, "cluster", stats);
  out.add("cluster_events", static_cast<double>(events), "events");
  out.add("cluster_events_per_sec", static_cast<double>(events) / wall,
          "events/s");
  out.add("cluster_packets", static_cast<double>(network.packets_sent()),
          "packets");
}

int run(std::uint64_t rounds, SimDuration window) {
  print_header("Perf: datapath byte-copy accounting + wall-clock rates");
  BenchSummary out("perf_datapath");
  fragmented_rpc(out, rounds);
  cluster_run(out, window);
  return 0;
}

}  // namespace
}  // namespace lnic::bench

int main(int argc, char** argv) {
  std::uint64_t rounds = 400;
  lnic::SimDuration window = lnic::seconds(2);
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      rounds = 40;
      window = lnic::milliseconds(40);
    }
  }
  return lnic::bench::run(rounds, window);
}
