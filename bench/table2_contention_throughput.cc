// Table 2: average throughput when running three distinct web-server
// lambdas concurrently (the Fig. 8 setup). Paper's row:
//   λ-NIC 58,000 req/s | bare metal 950 (56 threads) | 520 (1 thread).
//
// The paper's "1 Thread" column limits the *service* concurrency; we
// reproduce both that and the single-core variant.
#include <cstdio>
#include <functional>

#include "bench/harness.h"

using namespace lnic;
using namespace lnic::bench;

namespace {

double host_throughput(hostsim::HostConfig config, std::uint64_t total) {
  sim::Simulator sim;
  net::Network network(sim);
  backends::HostBackend host(sim, network, backends::BackendKind::kBareMetal,
                             config);
  auto st = host.deploy(workloads::make_web_farm(3));
  if (!st.ok()) return 0.0;
  proto::RpcConfig rpc;
  rpc.retransmit_timeout = seconds(600);
  proto::RpcClient client(sim, network, rpc);
  std::uint64_t issued = 0, completed = 0;
  const SimTime start = sim.now();
  std::function<void()> issue = [&]() {
    if (issued >= total) return;
    const std::uint64_t i = issued++;
    client.call(host.node(), static_cast<WorkloadId>(i % 3 + 1),
                workloads::encode_web_request(i & 3),
                [&](Result<proto::RpcResponse>) {
                  ++completed;
                  issue();
                });
  };
  for (int c = 0; c < 56; ++c) issue();
  sim.run();
  return static_cast<double>(completed) / to_sec(sim.now() - start);
}

}  // namespace

int main() {
  print_header("Table 2: throughput, three concurrent web-server lambdas");

  double nic_rps = 0.0;
  {
    BackendRig rig(backends::BackendKind::kLambdaNic);
    rig.redeploy(workloads::make_web_farm(3));
    rig.run_round_robin(
        {1, 2, 3},
        [](std::uint64_t i) { return workloads::encode_web_request(i & 3); },
        /*concurrency=*/56, /*total=*/30000);
    nic_rps = rig.last_throughput_rps();
  }
  const double bm56 = host_throughput(backends::bare_metal_config(56), 4000);
  const double bm1 = host_throughput(backends::bare_metal_config(1), 2000);

  std::printf("\n  %-28s %12s\n", "backend", "req/s");
  std::printf("  %-28s %12.0f   (paper: 58,000)\n", "lambda-nic", nic_rps);
  std::printf("  %-28s %12.0f   (paper:    950)\n", "bare-metal, 56 threads",
              bm56);
  std::printf("  %-28s %12.0f   (paper:    520)\n", "bare-metal, 1 thread",
              bm1);

  BenchSummary summary("table2_contention_throughput");
  summary.add("lambda-nic", nic_rps, "req/s");
  summary.add("bare-metal-56", bm56, "req/s");
  summary.add("bare-metal-1", bm1, "req/s");
  return 0;
}
