// Table 3: additional resources utilized by each backend while serving
// 56 concurrent image-transformer requests (§6.4). Paper's rows:
//   host CPU (avg %):   +0.1 | +9.2  | +13.7
//   host memory (MiB):   0   | +62.5 | +219.5
//   NIC  memory (MiB): +63.2 |  0    |  0
#include <cstdio>

#include "bench/harness.h"

using namespace lnic;
using namespace lnic::bench;

int main() {
  print_header("Table 3: additional resources, image transformer @56 senders");

  const auto cases = standard_cases(0, 0, /*image=*/336);
  const auto& image_case = cases[2];
  const backends::BackendKind kinds[] = {
      backends::BackendKind::kLambdaNic, backends::BackendKind::kBareMetal,
      backends::BackendKind::kContainer};

  backends::ResourceUsage usage[3];
  for (int k = 0; k < 3; ++k) {
    BackendRig rig(kinds[k]);
    const SimTime start = rig.sim().now();
    rig.run_closed_loop(image_case, /*concurrency=*/56);
    usage[k] = rig.backend().usage(rig.sim().now() - start);
  }

  std::printf("\n  %-22s %12s %12s %12s\n", "", "lambda-nic", "bare-metal",
              "container");
  std::printf("  %-22s %11.1f%% %11.1f%% %11.1f%%   (paper: 0.1 / 9.2 / 13.7)\n",
              "host CPU (avg %)", usage[0].host_cpu_percent,
              usage[1].host_cpu_percent, usage[2].host_cpu_percent);
  std::printf("  %-22s %11.1fM %11.1fM %11.1fM   (paper: 0 / 62.5 / 219.5)\n",
              "host memory (MiB)", to_mib(usage[0].host_memory),
              to_mib(usage[1].host_memory), to_mib(usage[2].host_memory));
  std::printf("  %-22s %11.1fM %11.1fM %11.1fM   (paper: 63.2 / 0 / 0)\n",
              "NIC memory (MiB)", to_mib(usage[0].nic_memory),
              to_mib(usage[1].nic_memory), to_mib(usage[2].nic_memory));

  BenchSummary summary("table3_resources");
  for (int k = 0; k < 3; ++k) {
    const std::string backend = backends::to_string(kinds[k]);
    summary.add(backend + "/host_cpu", usage[k].host_cpu_percent, "%");
    summary.add(backend + "/host_memory", to_mib(usage[k].host_memory),
                "MiB");
    summary.add(backend + "/nic_memory", to_mib(usage[k].nic_memory), "MiB");
  }
  return 0;
}
