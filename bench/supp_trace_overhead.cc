// Supplementary (ours): the cost of observability.
//
// The tracing layer is bookkeeping outside simulated time, so its
// simulated latency overhead must be exactly zero — the same closed-loop
// run with tracing off and on must produce bit-identical latency
// samples. This bench asserts that, then reports the *wall-clock*
// recording cost (span allocation, annotation strings, JSON export),
// which is the only real overhead a user pays.
//
// Three rows: tracing off, sampled (1/16 of requests), and full (every
// request). All three must agree on every simulated statistic.
#include <chrono>
#include <cstdio>

#include "bench/harness.h"
#include "common/trace.h"
#include "framework/gateway.h"

using namespace lnic;
using namespace lnic::bench;

namespace {

struct RunResult {
  std::uint64_t count = 0;
  double mean_ns = 0.0;
  double p50_ns = 0.0;
  double p99_ns = 0.0;
  std::uint64_t completed = 0;
  std::size_t spans = 0;
  double wall_ms = 0.0;    // simulation + span recording
  double export_ms = 0.0;  // one-shot Chrome JSON serialization
};

RunResult run(double sample_rate, std::uint64_t total,
              std::uint32_t senders) {
  const auto wall_start = std::chrono::steady_clock::now();

  sim::Simulator sim;
  net::Network network(sim);
  auto w0 =
      backends::make_backend(backends::BackendKind::kLambdaNic, sim, network);
  auto w1 =
      backends::make_backend(backends::BackendKind::kLambdaNic, sim, network);
  kvstore::CacheServer cache(sim, network);
  w0->set_kv_server(cache.node());
  w1->set_kv_server(cache.node());
  if (!w0->deploy(workloads::make_standard_workloads()).ok()) return {};
  if (!w1->deploy(workloads::make_standard_workloads()).ok()) return {};
  sim.run_until(seconds(20));  // firmware load

  framework::Gateway gateway(sim, network);
  gateway.register_function("web_server", workloads::kWebServerId,
                            {w0->node(), w1->node()});

  trace::TraceRecorder recorder;
  if (sample_rate > 0.0) {
    gateway.set_tracer(&recorder, sample_rate);
    w0->set_tracer(&recorder);
    w1->set_tracer(&recorder);
  }

  std::uint64_t issued = 0;
  std::function<void()> issue = [&]() {
    if (issued >= total) return;
    const std::uint64_t i = issued++;
    gateway.invoke("web_server", workloads::encode_web_request(i & 3),
                   [&](Result<proto::RpcResponse>) { issue(); });
  };
  for (std::uint32_t c = 0; c < senders; ++c) issue();
  sim.run();

  RunResult result;
  const Sampler& latency = gateway.latency("web_server");
  result.count = latency.count();
  result.mean_ns = latency.mean();
  result.p50_ns = latency.median();
  result.p99_ns = latency.p99();
  result.completed = w0->completed() + w1->completed();
  result.spans = recorder.size();
  result.wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - wall_start)
          .count();
  if (sample_rate > 0.0) {
    // The one-shot JSON serialization is what an exporting run pays on
    // top of recording; timed separately so per-request and end-of-run
    // costs are not conflated.
    const auto export_start = std::chrono::steady_clock::now();
    volatile std::size_t sink = recorder.to_chrome_json().size();
    (void)sink;
    result.export_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - export_start)
            .count();
  }
  return result;
}

bool identical(const RunResult& a, const RunResult& b) {
  return a.count == b.count && a.mean_ns == b.mean_ns &&
         a.p50_ns == b.p50_ns && a.p99_ns == b.p99_ns &&
         a.completed == b.completed;
}

}  // namespace

int main() {
  print_header("Supplementary: tracing overhead");
  BenchSummary summary("supp_trace_overhead", /*seed=*/1);

  constexpr std::uint64_t kTotal = 4000;
  constexpr std::uint32_t kSenders = 8;

  const RunResult off = run(0.0, kTotal, kSenders);
  const RunResult sampled = run(1.0 / 16.0, kTotal, kSenders);
  const RunResult full = run(1.0, kTotal, kSenders);

  std::printf("\n  %-16s %10s %12s %12s %9s %10s %11s\n", "tracing",
              "requests", "p50 (us)", "p99 (us)", "spans", "wall (ms)",
              "export (ms)");
  const auto row = [](const char* label, const RunResult& r) {
    std::printf("  %-16s %10llu %12.2f %12.2f %9zu %10.1f %11.1f\n", label,
                static_cast<unsigned long long>(r.count), r.p50_ns / 1e3,
                r.p99_ns / 1e3, r.spans, r.wall_ms, r.export_ms);
  };
  row("off", off);
  row("sampled 1/16", sampled);
  row("full", full);

  const bool sim_identical = identical(off, sampled) && identical(off, full);
  const double wall_overhead_pct =
      off.wall_ms > 0.0 ? (full.wall_ms - off.wall_ms) / off.wall_ms * 100.0
                        : 0.0;
  std::printf("\n  simulated stats identical across rows: %s\n",
              sim_identical ? "yes" : "NO (determinism regression!)");
  std::printf("  wall-clock recording overhead (full): %.1f%%\n",
              wall_overhead_pct);

  summary.add("off/p99", off.p99_ns / 1e3, "us");
  summary.add("full/p99", full.p99_ns / 1e3, "us");
  summary.add("full/spans", static_cast<double>(full.spans), "count");
  summary.add("sim_identical", sim_identical ? 1.0 : 0.0, "bool");
  // By construction the simulated p99 delta is zero; exported so sweeps
  // can alarm on any future regression.
  summary.add("p99_overhead_pct",
              off.p99_ns > 0.0
                  ? (full.p99_ns - off.p99_ns) / off.p99_ns * 100.0
                  : 0.0,
              "%");

  return sim_identical ? 0 : 1;
}
