// Supplementary (ours): the cost of observability.
//
// The tracing layer is bookkeeping outside simulated time, so its
// simulated latency overhead must be exactly zero — the same closed-loop
// run with tracing off and on must produce bit-identical latency
// samples. This bench asserts that, then reports the *wall-clock*
// recording cost (span allocation, annotation strings, JSON export),
// which is the only real overhead a user pays.
//
// Four rows: tracing off, sampled (1/16 of requests), full (every
// request), and full plus the NPU-grid profiler. All four must agree on
// every simulated statistic. Two more sections cover the rest of the
// observability plane: the flight recorder's per-record wall cost, and
// a 2-shard rerun asserting that shard stall accounting neither
// perturbs the simulation nor breaks its busy+barrier+sync == wall
// identity.
#include <chrono>
#include <cmath>
#include <cstdio>

#include "bench/harness.h"
#include "common/trace.h"
#include "framework/gateway.h"

using namespace lnic;
using namespace lnic::bench;

namespace {

struct RunResult {
  std::uint64_t count = 0;
  double mean_ns = 0.0;
  double p50_ns = 0.0;
  double p99_ns = 0.0;
  std::uint64_t completed = 0;
  std::size_t spans = 0;
  double wall_ms = 0.0;    // simulation + span recording
  double export_ms = 0.0;  // one-shot Chrome JSON serialization
};

RunResult run(double sample_rate, std::uint64_t total,
              std::uint32_t senders, bool profile = false) {
  const auto wall_start = std::chrono::steady_clock::now();

  sim::Simulator sim;
  net::Network network(sim);
  auto w0 =
      backends::make_backend(backends::BackendKind::kLambdaNic, sim, network);
  auto w1 =
      backends::make_backend(backends::BackendKind::kLambdaNic, sim, network);
  kvstore::CacheServer cache(sim, network);
  w0->set_kv_server(cache.node());
  w1->set_kv_server(cache.node());
  if (!w0->deploy(workloads::make_standard_workloads()).ok()) return {};
  if (!w1->deploy(workloads::make_standard_workloads()).ok()) return {};
  if (profile) {
    dynamic_cast<backends::LambdaNicBackend&>(*w0).nic().enable_profiler();
    dynamic_cast<backends::LambdaNicBackend&>(*w1).nic().enable_profiler();
  }
  sim.run_until(seconds(20));  // firmware load

  framework::Gateway gateway(sim, network);
  gateway.register_function("web_server", workloads::kWebServerId,
                            {w0->node(), w1->node()});

  trace::TraceRecorder recorder;
  if (sample_rate > 0.0) {
    gateway.set_tracer(&recorder, sample_rate);
    w0->set_tracer(&recorder);
    w1->set_tracer(&recorder);
  }

  std::uint64_t issued = 0;
  std::function<void()> issue = [&]() {
    if (issued >= total) return;
    const std::uint64_t i = issued++;
    gateway.invoke("web_server", workloads::encode_web_request(i & 3),
                   [&](Result<proto::RpcResponse>) { issue(); });
  };
  for (std::uint32_t c = 0; c < senders; ++c) issue();
  sim.run();

  RunResult result;
  const Sampler& latency = gateway.latency("web_server");
  result.count = latency.count();
  result.mean_ns = latency.mean();
  result.p50_ns = latency.median();
  result.p99_ns = latency.p99();
  result.completed = w0->completed() + w1->completed();
  result.spans = recorder.size();
  result.wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - wall_start)
          .count();
  if (sample_rate > 0.0) {
    // The one-shot JSON serialization is what an exporting run pays on
    // top of recording; timed separately so per-request and end-of-run
    // costs are not conflated.
    const auto export_start = std::chrono::steady_clock::now();
    volatile std::size_t sink = recorder.to_chrome_json().size();
    (void)sink;
    result.export_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - export_start)
            .count();
  }
  return result;
}

bool identical(const RunResult& a, const RunResult& b) {
  return a.count == b.count && a.mean_ns == b.mean_ns &&
         a.p50_ns == b.p50_ns && a.p99_ns == b.p99_ns &&
         a.completed == b.completed;
}

/// Wall cost of one flight-recorder append, measured on a private ring
/// (the global one stays reserved for real anomalies). Also checks the
/// ring honors its bound under sustained overflow.
struct FlightrecCost {
  double ns_per_record = 0.0;
  bool bounded = false;
};

FlightrecCost measure_flightrec(std::uint64_t records) {
  flightrec::FlightRecorder ring;
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < records; ++i) {
    ring.record(static_cast<SimTime>(i), flightrec::Kind::kOther, i, i >> 1,
                "synthetic anomaly");
  }
  const double ns = std::chrono::duration<double, std::nano>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  FlightrecCost cost;
  cost.ns_per_record = records > 0 ? ns / static_cast<double>(records) : 0.0;
  cost.bounded = ring.snapshot().size() <= ring.capacity() &&
                 ring.recorded() == records &&
                 ring.evicted() == records - ring.capacity();
  return cost;
}

/// One 2-shard closed-loop run with stall accounting live the whole
/// time. Returns the simulated stats (for the rerun-identity check) and
/// the collector snapshot (for the sum-to-wall identity).
struct ShardRun {
  RunResult result;
  sim::ShardStats stats;
};

ShardRun run_sharded(std::uint64_t total) {
  BackendRig rig(backends::BackendKind::kLambdaNic, /*worker_threads=*/56,
                 /*shards=*/2);
  WorkloadCase test;
  test.name = "web";
  test.workload = workloads::kWebServerId;
  test.payload = [](std::uint64_t i) {
    return workloads::encode_web_request(i & 3);
  };
  test.requests = total;
  const Sampler latency = rig.run_closed_loop(test, /*concurrency=*/8);
  ShardRun run;
  run.result.count = latency.count();
  run.result.mean_ns = latency.mean();
  run.result.p50_ns = latency.median();
  run.result.p99_ns = latency.p99();
  run.result.completed = rig.backend().completed();
  run.stats = rig.sharded().shard_stats();
  return run;
}

/// Worst per-shard |busy + barrier + sync - wall| / wall, in percent.
double stall_sum_error_pct(const sim::ShardStats& stats) {
  if (stats.total_wall_ns == 0) return 0.0;
  double worst = 0.0;
  for (unsigned s = 0; s < stats.shards; ++s) {
    const double sum = static_cast<double>(
        stats.busy_ns[s] + stats.barrier_ns[s] + stats.sync_wall_ns());
    const double err =
        std::abs(sum - static_cast<double>(stats.total_wall_ns)) /
        static_cast<double>(stats.total_wall_ns) * 100.0;
    if (err > worst) worst = err;
  }
  return worst;
}

}  // namespace

int main() {
  print_header("Supplementary: tracing overhead");
  BenchSummary summary("supp_trace_overhead", /*seed=*/1);

  constexpr std::uint64_t kTotal = 4000;
  constexpr std::uint32_t kSenders = 8;

  const RunResult off = run(0.0, kTotal, kSenders);
  const RunResult sampled = run(1.0 / 16.0, kTotal, kSenders);
  const RunResult full = run(1.0, kTotal, kSenders);
  const RunResult profiled = run(1.0, kTotal, kSenders, /*profile=*/true);

  std::printf("\n  %-16s %10s %12s %12s %9s %10s %11s\n", "tracing",
              "requests", "p50 (us)", "p99 (us)", "spans", "wall (ms)",
              "export (ms)");
  const auto row = [](const char* label, const RunResult& r) {
    std::printf("  %-16s %10llu %12.2f %12.2f %9zu %10.1f %11.1f\n", label,
                static_cast<unsigned long long>(r.count), r.p50_ns / 1e3,
                r.p99_ns / 1e3, r.spans, r.wall_ms, r.export_ms);
  };
  row("off", off);
  row("sampled 1/16", sampled);
  row("full", full);
  row("full + profiler", profiled);

  const bool sim_identical = identical(off, sampled) &&
                             identical(off, full) &&
                             identical(off, profiled);
  const double wall_overhead_pct =
      off.wall_ms > 0.0 ? (full.wall_ms - off.wall_ms) / off.wall_ms * 100.0
                        : 0.0;
  std::printf("\n  simulated stats identical across rows: %s\n",
              sim_identical ? "yes" : "NO (determinism regression!)");
  std::printf("  wall-clock recording overhead (full): %.1f%%\n",
              wall_overhead_pct);

  summary.add("off/p99", off.p99_ns / 1e3, "us");
  summary.add("full/p99", full.p99_ns / 1e3, "us");
  summary.add("full/spans", static_cast<double>(full.spans), "count");
  summary.add("sim_identical", sim_identical ? 1.0 : 0.0, "bool");
  // By construction the simulated p99 delta is zero; exported so sweeps
  // can alarm on any future regression.
  summary.add("p99_overhead_pct",
              off.p99_ns > 0.0
                  ? (full.p99_ns - off.p99_ns) / off.p99_ns * 100.0
                  : 0.0,
              "%");

  // -- flight recorder: per-record wall cost, ring stays bounded --------
  constexpr std::uint64_t kFlightrecRecords = 1'000'000;
  const FlightrecCost fr = measure_flightrec(kFlightrecRecords);
  std::printf("\n  flight recorder: %.0f ns/record over %llu appends, "
              "ring bounded: %s\n",
              fr.ns_per_record,
              static_cast<unsigned long long>(kFlightrecRecords),
              fr.bounded ? "yes" : "NO");
  summary.add("flightrec_ns_per_record", fr.ns_per_record, "ns");
  summary.add("flightrec_bounded", fr.bounded ? 1.0 : 0.0, "bool");

  // -- shard stall accounting: no perturbation, sums to wall -----------
  constexpr std::uint64_t kShardTotal = 1000;
  const ShardRun shard_a = run_sharded(kShardTotal);
  const ShardRun shard_b = run_sharded(kShardTotal);
  const bool shard_identical = identical(shard_a.result, shard_b.result);
  const double shard_sum_err =
      std::max(stall_sum_error_pct(shard_a.stats),
               stall_sum_error_pct(shard_b.stats));
  std::printf("  2-shard rerun identical with stall accounting on: %s\n",
              shard_identical ? "yes" : "NO (determinism regression!)");
  std::printf("  stall breakdown sum error: %.3f%% of wall "
              "(%llu windows)\n",
              shard_sum_err,
              static_cast<unsigned long long>(shard_a.stats.windows));
  summary.add("shard_identical", shard_identical ? 1.0 : 0.0, "bool");
  summary.add("shard_stall_sum_err_pct", shard_sum_err, "%");

  if (!sim_identical) {
    return bench_fail("simulated stats differ across tracing rows");
  }
  if (!shard_identical) {
    return bench_fail("2-shard rerun differs with stall accounting on");
  }
  if (!fr.bounded) {
    return bench_fail("flight recorder ring exceeded its bound");
  }
  if (shard_sum_err > 1.0) {
    return bench_fail("shard stall breakdown does not sum to wall (" +
                      std::to_string(shard_sum_err) + "% off)");
  }
  return 0;
}
