// Figure 8: CDF of latencies when running three distinct web-server
// lambdas concurrently, requests issued round-robin (§6.3.2). Compares
// λ-NIC against the bare-metal backend with all 56 threads and with a
// single core — the context-switching experiment.
//
// Paper: bare metal suffers 178x-330x higher latency than λ-NIC under
// contention; λ-NIC completes requests 55x-100x faster.
#include <cstdio>

#include "bench/harness.h"

using namespace lnic;
using namespace lnic::bench;

int main() {
  print_header("Figure 8: latency CDF, three web-server lambdas round-robin");

  const std::uint64_t total = 6000;
  const std::uint32_t concurrency = 56;

  // λ-NIC.
  Sampler nic;
  {
    BackendRig rig(backends::BackendKind::kLambdaNic);
    rig.redeploy(workloads::make_web_farm(3));
    nic = rig.run_round_robin(
        {1, 2, 3},
        [](std::uint64_t i) { return workloads::encode_web_request(i & 3); },
        concurrency, total);
  }
  // Bare metal, 56 hardware threads.
  Sampler bm;
  {
    BackendRig rig(backends::BackendKind::kBareMetal);
    rig.redeploy(workloads::make_web_farm(3));
    bm = rig.run_round_robin(
        {1, 2, 3},
        [](std::uint64_t i) { return workloads::encode_web_request(i & 3); },
        concurrency, total);
  }
  // Bare metal pinned to a single core (Fig. 8's third series).
  Sampler bm1;
  {
    sim::Simulator sim;
    net::Network network(sim);
    backends::HostBackend host(sim, network,
                               backends::BackendKind::kBareMetal,
                               backends::bare_metal_single_core_config());
    kvstore::CacheServer cache(sim, network);
    host.set_kv_server(cache.node());
    auto st = host.deploy(workloads::make_web_farm(3));
    if (!st.ok()) {
      std::fprintf(stderr, "deploy: %s\n", st.error().message.c_str());
      return 1;
    }
    proto::RpcConfig rpc;
    rpc.retransmit_timeout = seconds(600);
    proto::RpcClient client(sim, network, rpc);
    std::uint64_t issued = 0;
    std::function<void()> issue = [&]() {
      if (issued >= total) return;
      const std::uint64_t i = issued++;
      client.call(host.node(), static_cast<WorkloadId>(i % 3 + 1),
                  workloads::encode_web_request(i & 3),
                  [&](Result<proto::RpcResponse> r) {
                    if (r.ok()) {
                      bm1.add(static_cast<double>(r.value().latency));
                    }
                    issue();
                  });
    };
    for (std::uint32_t c = 0; c < concurrency; ++c) issue();
    sim.run();
  }

  std::printf("\nCDF (ms):\n");
  print_ecdf_ms("lambda-nic", nic);
  print_ecdf_ms("bare-metal (56 threads)", bm);
  print_ecdf_ms("bare-metal (single core)", bm1);
  std::printf("\nmean latency (ms): lambda-nic %.4f | bare-metal %.3f | "
              "bare-metal-1core %.3f\n",
              nic.mean() / 1e6, bm.mean() / 1e6, bm1.mean() / 1e6);
  std::printf("bare-metal vs lambda-nic: %.0fx (56 thr), %.0fx (1 core)\n",
              bm.mean() / nic.mean(), bm1.mean() / nic.mean());

  BenchSummary summary("fig8_contention_latency");
  summary.add("lambda-nic/mean", nic.mean() / 1e6, "ms");
  summary.add("lambda-nic/p99", nic.p99() / 1e6, "ms");
  summary.add("bare-metal-56/mean", bm.mean() / 1e6, "ms");
  summary.add("bare-metal-56/p99", bm.p99() / 1e6, "ms");
  summary.add("bare-metal-1core/mean", bm1.mean() / 1e6, "ms");
  summary.add("bare-metal-1core/p99", bm1.p99() / 1e6, "ms");
  return 0;
}
