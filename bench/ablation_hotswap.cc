// Ablation (§7 "Hot swapping workloads"): requests lost while deploying
// a new lambda, with today's full-firmware reload versus the hitless
// update the paper anticipates from next-generation NICs.
#include <cstdio>
#include <functional>

#include "bench/harness.h"

using namespace lnic;
using namespace lnic::bench;

namespace {

struct Outcome {
  std::uint64_t dropped;
  std::uint64_t completed;
};

Outcome run(bool hot_swap) {
  sim::Simulator sim;
  net::Network network(sim);
  nicsim::NicConfig config = backends::lambda_nic_config();
  config.allow_hot_swap = hot_swap;
  nicsim::SmartNic nic(sim, network, config);
  kvstore::CacheServer cache(sim, network);
  nic.set_kv_server(cache.node());

  auto deploy = [&]() {
    auto bundle = workloads::make_standard_workloads();
    auto compiled = compiler::compile(bundle.spec, std::move(bundle.lambdas));
    (void)nic.deploy(std::move(compiled).value());
  };
  deploy();
  sim.run_until(seconds(16));

  proto::RpcConfig rpc;
  rpc.max_retries = 0;  // count raw losses, no retransmission mask
  rpc.retransmit_timeout = seconds(30);
  proto::RpcClient client(sim, network, rpc);

  // Steady 2,000 rps of web traffic for 20 s; redeploy at t=5 s.
  std::uint64_t i = 0;
  sim::PeriodicTimer load(sim, microseconds(500), [&] {
    client.call(nic.node(), workloads::kWebServerId,
                workloads::encode_web_request(i++ & 3), nullptr);
  });
  load.start();
  sim.schedule(seconds(5), deploy);
  sim.run_until(sim.now() + seconds(20));
  load.stop();
  sim.run_until(sim.now() + seconds(31));

  return Outcome{nic.stats().requests_dropped_down,
                 nic.stats().requests_completed};
}

}  // namespace

int main() {
  print_header("Ablation: firmware reload downtime vs hitless update (§7)");
  const Outcome reload = run(false);
  const Outcome hitless = run(true);
  std::printf("\n  %-26s %12s %12s\n", "mode", "completed", "dropped");
  std::printf("  %-26s %12llu %12llu\n", "full reload (today)",
              static_cast<unsigned long long>(reload.completed),
              static_cast<unsigned long long>(reload.dropped));
  std::printf("  %-26s %12llu %12llu\n", "hitless update (future)",
              static_cast<unsigned long long>(hitless.completed),
              static_cast<unsigned long long>(hitless.dropped));
  std::printf("\n  A redeploy today blacks the card out for 15 s "
              "(~30k requests at 2k rps); hitless updates lose none.\n");
  return 0;
}
