// Supplementary figure (ours): web-server throughput and p99 latency as
// offered load grows from 1 to 256 closed-loop senders, per backend —
// the load-response curves behind Figures 6-8. λ-NIC's 432 lambda
// threads keep latency flat until the 10 G wire saturates; the host
// backends saturate at the GIL (bare metal) or the watchdog (container)
// almost immediately, and queueing inflates their tails.
//
// A second section scales out instead of up: a rack of 400 λ-NIC
// workers — 100x the paper's 4-worker testbed — behind one gateway,
// driven open-loop by loadgen:: Poisson arrivals, with the workers
// spread across event shards (sim/sharded.h). Usage:
//   supp_load_scaling [--smoke] [--shards N] [--adaptive]
//
// --adaptive turns on EOT window extension (sim/sharded.h). The rack's
// frontier is hot in steady state — every shard hosts workers that reply
// to the shard-0 gateway — so most windows stay at the static floor; the
// extensions show up around the drain tail, and the window counters land
// in the JSON either way.
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "bench/harness.h"
#include "framework/gateway.h"
#include "loadgen/generator.h"

using namespace lnic;
using namespace lnic::bench;

namespace {

/// 100x-scale rack: `workers` λ-NIC nodes round-robined across shards
/// 1..N-1 (gateway, cache and the generator on shard 0), Poisson
/// open-loop arrivals at `rate_rps` for `window`.
void run_scale_section(BenchSummary& summary, unsigned shards,
                       bool adaptive, std::size_t workers, double rate_rps,
                       SimDuration window) {
  sim::ShardedSimulator sharded(shards);
  sim::Simulator& sim0 = sharded.shard(0);
  net::Network network(sharded);
  kvstore::CacheServer cache(sim0, network);

  std::vector<std::unique_ptr<backends::Backend>> pool;
  std::vector<NodeId> nodes;
  const unsigned worker_shards =
      sharded.shards() > 1 ? sharded.shards() - 1 : 1;
  for (std::size_t i = 0; i < workers; ++i) {
    const unsigned shard =
        sharded.shards() > 1 ? 1 + static_cast<unsigned>(i % worker_shards)
                             : 0;
    network.set_attach_shard(shard);
    pool.push_back(backends::make_backend(backends::BackendKind::kLambdaNic,
                                          sharded.shard(shard), network));
    pool.back()->set_kv_server(cache.node());
    if (!pool.back()->deploy(workloads::make_standard_workloads()).ok()) {
      std::fprintf(stderr, "scale section: deploy failed\n");
      return;
    }
    nodes.push_back(pool.back()->node());
  }
  network.set_attach_shard(0);
  if (adaptive) {
    // Every node here is remote-capable (workers answer the shard-0
    // gateway; the shard-0 cache answers workers), so no local-only
    // declarations: each shard's EOT is simply its next event time.
    network.enable_adaptive_sync();
  }
  sharded.run_until(seconds(40));  // firmware flash across the rack

  framework::GatewayConfig config;
  config.rpc.retransmit_timeout = seconds(600);  // queueing, not loss
  framework::Gateway gateway(sim0, network, config);
  gateway.register_function(loadgen::function_name(0),
                            workloads::kWebServerId, nodes);

  loadgen::LoadGenConfig lg;
  lg.arrivals = loadgen::ArrivalSpec::poisson(rate_rps);
  lg.duration = window;
  lg.seed = 17;
  lg.slo.deadline = milliseconds(2);
  loadgen::LoadGenerator generator(
      sim0, lg, loadgen::uniform_functions(1),
      loadgen::gateway_sink(gateway, [](const loadgen::Request& request) {
        return workloads::encode_web_request(request.id & 3);
      }));

  const SimTime start = sim0.now();
  generator.start();
  sharded.run_until(start + window);
  generator.stop();
  sharded.run();  // drain so every offered request is accounted

  const loadgen::SloReport report = generator.slo().report(window);
  std::printf("\n-- rack scale: %zu x nic workers, %u shard(s) --\n",
              workers, sharded.shards());
  std::printf("  offered %8llu (%8.0f rps)  goodput %8.0f rps\n"
              "  p50 %8.3f ms  p99 %8.3f ms  deadline misses %.2f%%\n"
              "  events %llu  cross-shard posts %llu  windows %llu\n",
              static_cast<unsigned long long>(report.offered),
              report.offered_rps, report.goodput_rps, report.p50_ms,
              report.p99_ms, report.violation_fraction * 100.0,
              static_cast<unsigned long long>(sharded.events_dispatched()),
              static_cast<unsigned long long>(sharded.cross_shard_posts()),
              static_cast<unsigned long long>(sharded.windows_executed()));
  summary.add("scale/workers", static_cast<double>(workers), "count");
  summary.add("scale/offered", static_cast<double>(report.offered), "count");
  summary.add("scale/goodput", report.goodput_rps, "rps");
  summary.add("scale/p50", report.p50_ms, "ms");
  summary.add("scale/p99", report.p99_ms, "ms");
  summary.add("scale/violation_frac", report.violation_fraction, "fraction");
  summary.add("scale/cross_shard_posts",
              static_cast<double>(sharded.cross_shard_posts()), "count");
  summary.add("scale/windows",
              static_cast<double>(sharded.windows_executed()), "windows");
  summary.add("scale/windows_extended",
              static_cast<double>(sharded.windows_extended()), "windows");
  summary.add("scale/window_span_ns",
              sharded.shard_stats().mean_window_span_ns, "ns");
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  const unsigned shards = shards_from_args(argc, argv);
  const bool adaptive = adaptive_from_args(argc, argv);

  print_header("Supplementary: load scaling, web server");
  BenchSummary summary("supp_load_scaling", /*seed=*/1, shards);

  const backends::BackendKind kinds[] = {
      backends::BackendKind::kLambdaNic, backends::BackendKind::kBareMetal,
      backends::BackendKind::kContainer};
  const std::uint32_t concurrencies[] = {1, 4, 16, 56, 128, 256};

  for (const auto kind : kinds) {
    std::printf("\n-- %s --\n", backends::to_string(kind));
    std::printf("  %10s %14s %14s\n", "senders", "req/s", "p99 (ms)");
    for (const auto c : concurrencies) {
      BackendRig rig(kind, /*worker_threads=*/56, shards, adaptive);
      WorkloadCase test{
          "web", workloads::kWebServerId,
          [](std::uint64_t i) { return workloads::encode_web_request(i & 3); },
          // Enough requests that the slowest backend still reaches a
          // steady state at this concurrency.
          std::max<std::uint64_t>(2000, 200ull * c)};
      if (kind != backends::BackendKind::kLambdaNic) {
        test.requests = std::max<std::uint64_t>(600, 12ull * c);
      }
      const Sampler lat = rig.run_closed_loop(test, c);
      std::printf("  %10u %14.0f %14.3f\n", c, rig.last_throughput_rps(),
                  lat.p99() / 1e6);
      const std::string cell = std::string(backends::to_string(kind)) + "/" +
                               std::to_string(c);
      summary.add(cell + "/rps", rig.last_throughput_rps(), "req/s");
      summary.add(cell + "/p99", lat.p99() / 1e6, "ms");
    }
  }
  std::printf("\n  λ-NIC latency stays flat while throughput scales to the\n"
              "  gateway/wire limit; host backends saturate within a few\n"
              "  senders and queueing inflates their tails linearly.\n");

  // 100x today's 4-worker cluster (40x under --smoke, for CI).
  run_scale_section(summary, shards, adaptive,
                    /*workers=*/smoke ? 40 : 400,
                    /*rate_rps=*/smoke ? 50'000.0 : 200'000.0,
                    /*window=*/smoke ? milliseconds(20) : milliseconds(50));
  return 0;
}
