// Supplementary figure (ours): web-server throughput and p99 latency as
// offered load grows from 1 to 256 closed-loop senders, per backend —
// the load-response curves behind Figures 6-8. λ-NIC's 432 lambda
// threads keep latency flat until the 10 G wire saturates; the host
// backends saturate at the GIL (bare metal) or the watchdog (container)
// almost immediately, and queueing inflates their tails.
#include <cstdio>

#include "bench/harness.h"

using namespace lnic;
using namespace lnic::bench;

int main() {
  print_header("Supplementary: load scaling, web server");
  BenchSummary summary("supp_load_scaling");

  const backends::BackendKind kinds[] = {
      backends::BackendKind::kLambdaNic, backends::BackendKind::kBareMetal,
      backends::BackendKind::kContainer};
  const std::uint32_t concurrencies[] = {1, 4, 16, 56, 128, 256};

  for (const auto kind : kinds) {
    std::printf("\n-- %s --\n", backends::to_string(kind));
    std::printf("  %10s %14s %14s\n", "senders", "req/s", "p99 (ms)");
    for (const auto c : concurrencies) {
      BackendRig rig(kind, /*worker_threads=*/56);
      WorkloadCase test{
          "web", workloads::kWebServerId,
          [](std::uint64_t i) { return workloads::encode_web_request(i & 3); },
          // Enough requests that the slowest backend still reaches a
          // steady state at this concurrency.
          std::max<std::uint64_t>(2000, 200ull * c)};
      if (kind != backends::BackendKind::kLambdaNic) {
        test.requests = std::max<std::uint64_t>(600, 12ull * c);
      }
      const Sampler lat = rig.run_closed_loop(test, c);
      std::printf("  %10u %14.0f %14.3f\n", c, rig.last_throughput_rps(),
                  lat.p99() / 1e6);
      const std::string cell = std::string(backends::to_string(kind)) + "/" +
                               std::to_string(c);
      summary.add(cell + "/rps", rig.last_throughput_rps(), "req/s");
      summary.add(cell + "/p99", lat.p99() / 1e6, "ms");
    }
  }
  std::printf("\n  λ-NIC latency stays flat while throughput scales to the\n"
              "  gateway/wire limit; host backends saturate within a few\n"
              "  senders and queueing inflates their tails linearly.\n");
  return 0;
}
