// Figure 7: average throughput (requests/s, log scale) for a single
// workload instance in isolation — (1) closed-loop testing with one
// sender and (2) parallel testing with 56 concurrent senders (§6.3.1).
//
// Paper: λ-NIC services requests 27x-736x faster than the two backends
// for the web server and key-value client, 5x-15x for the transformer.
#include <cstdio>

#include "bench/harness.h"

using namespace lnic;
using namespace lnic::bench;

int main() {
  print_header("Figure 7: average throughput, single lambda in isolation");
  BenchSummary summary("fig7_isolation_throughput");

  const auto cases = standard_cases(/*web=*/3000, /*kv=*/3000, /*image=*/120);
  const backends::BackendKind kinds[] = {
      backends::BackendKind::kLambdaNic, backends::BackendKind::kBareMetal,
      backends::BackendKind::kContainer};

  for (const auto& test : cases) {
    std::printf("\n-- %s --\n", test.name.c_str());
    double rps[3][2] = {};
    for (int k = 0; k < 3; ++k) {
      for (int mode = 0; mode < 2; ++mode) {
        const std::uint32_t threads = mode == 0 ? 1 : 56;
        BackendRig rig(kinds[k]);
        rig.run_closed_loop(test, threads);
        rps[k][mode] = rig.last_throughput_rps();
      }
      std::printf("  %-12s 1 thread: %10.1f req/s    56 threads: %10.1f req/s\n",
                  backends::to_string(kinds[k]), rps[k][0], rps[k][1]);
      const std::string cell =
          test.name + "/" + backends::to_string(kinds[k]);
      summary.add(cell + "/1", rps[k][0], "req/s");
      summary.add(cell + "/56", rps[k][1], "req/s");
    }
    std::printf("  speedup @56: vs bare-metal %.1fx, vs container %.1fx\n",
                rps[0][1] / rps[1][1], rps[0][1] / rps[2][1]);
  }
  return 0;
}
