// Supplementary figure (ours): realistic traffic through the gateway —
// NIC vs host vs hybrid worker pools under skewed, bursty offered load.
//
// The paper's benches drive closed-loop traffic at one function; real
// serverless frontends see the opposite: many functions, Zipf-skewed
// popularity, bursty open-loop arrivals that do not slow down when the
// system does. This bench registers a pool of function aliases (all
// backed by the web-server lambda so every request really executes),
// replays the *same* seeded Zipf + on-off burst arrival schedule against
// three 2-worker pools — SmartNIC, container host, and a mixed
// NIC+container pool — and reports coordinated-omission-safe SLO
// accounting: goodput, intended-arrival latency percentiles, and the
// fraction of demand that missed the deadline.
//
// The open-loop offered rate sits above the container pool's capacity,
// so the host cell shows what closed-loop tests hide: queues (and the
// intended-arrival tail) grow for as long as the burst lasts. Offered-
// load gauges (loadgen_offered_rps{fn=}, loadgen_inflight) land in the
// gateway registry next to gateway_* so supply and demand graph
// together. Usage: supp_traffic_mix [--smoke] (smaller pool + window).
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "framework/gateway.h"
#include "loadgen/generator.h"

using namespace lnic;
using namespace lnic::bench;

namespace {

struct MixParams {
  std::size_t functions = 32;
  SimDuration window = milliseconds(400);
  double base_rps = 2000.0;
  double burst_rps = 8000.0;
  SimDuration mean_on = milliseconds(20);
  SimDuration mean_off = milliseconds(30);
  double zipf_s = 0.9;
  SimDuration deadline = milliseconds(2);
  std::uint64_t seed = 11;
  unsigned shards = 1;
};

struct CellResult {
  loadgen::SloReport report;
  std::uint64_t gateway_requests = 0;
  double offered_rps_gauge = 0.0;  // hottest function's exported gauge
};

/// One pool of `kinds` workers behind a fresh gateway, all functions
/// aliased onto the web-server lambda.
CellResult run_cell(const std::vector<backends::BackendKind>& kinds,
                    const MixParams& params) {
  // Gateway, cache and the load generator share shard 0; workers
  // round-robin across the remaining shards (all on 0 when unsharded).
  sim::ShardedSimulator sharded(params.shards);
  sim::Simulator& sim = sharded.shard(0);
  net::Network network(sharded);
  kvstore::CacheServer cache(sim, network);

  std::vector<std::unique_ptr<backends::Backend>> workers;
  std::vector<NodeId> nodes;
  const unsigned worker_shards =
      sharded.shards() > 1 ? sharded.shards() - 1 : 1;
  for (std::size_t i = 0; i < kinds.size(); ++i) {
    const unsigned shard =
        sharded.shards() > 1 ? 1 + static_cast<unsigned>(i % worker_shards)
                             : 0;
    network.set_attach_shard(shard);
    workers.push_back(
        backends::make_backend(kinds[i], sharded.shard(shard), network));
    workers.back()->set_kv_server(cache.node());
    if (!workers.back()->deploy(workloads::make_standard_workloads()).ok()) {
      return {};
    }
    nodes.push_back(workers.back()->node());
  }
  network.set_attach_shard(0);
  sharded.run_until(seconds(40));  // firmware flash / container pull

  framework::GatewayConfig config;
  config.rpc.retransmit_timeout = seconds(600);  // queueing, not loss
  framework::Gateway gateway(sim, network, config);
  for (std::size_t rank = 0; rank < params.functions; ++rank) {
    gateway.register_function(loadgen::function_name(rank),
                              workloads::kWebServerId, nodes);
  }

  loadgen::LoadGenConfig lg;
  lg.arrivals = loadgen::ArrivalSpec::on_off(
      params.burst_rps, params.base_rps, params.mean_on, params.mean_off);
  lg.zipf_s = params.zipf_s;
  lg.duration = params.window;
  lg.seed = params.seed;
  lg.slo.deadline = params.deadline;

  loadgen::LoadGenerator generator(
      sim, lg, loadgen::uniform_functions(params.functions),
      loadgen::gateway_sink(gateway, [](const loadgen::Request& request) {
        return workloads::encode_web_request(request.id & 3);
      }));
  generator.set_metrics(&gateway.metrics());

  const SimTime start = sim.now();
  generator.start();
  sharded.run_until(start + params.window);
  generator.stop();
  sharded.run();  // drain queued work so every offered request is accounted

  CellResult cell;
  cell.report = generator.slo().report(params.window);
  generator.slo().export_to(gateway.metrics(), params.window);
  cell.gateway_requests = 0;
  for (std::size_t rank = 0; rank < params.functions; ++rank) {
    cell.gateway_requests +=
        gateway.metrics()
            .counter("gateway_requests_total",
                     {{"fn", loadgen::function_name(rank)}})
            .value();
  }
  cell.offered_rps_gauge =
      gateway.metrics().gauge("loadgen_offered_rps",
                              {{"fn", loadgen::function_name(0)}});
  return cell;
}

void print_cell(const std::string& label, const CellResult& cell) {
  const loadgen::SloReport& r = cell.report;
  std::printf("  %-14s offered %6llu (%6.0f rps)  goodput %7.0f rps  "
              "p50 %8.3f  p99 %9.3f  p99.9 %9.3f ms  viol %6.2f%%\n",
              label.c_str(), static_cast<unsigned long long>(r.offered),
              r.offered_rps, r.goodput_rps, r.p50_ms, r.p99_ms, r.p999_ms,
              r.violation_fraction * 100.0);
}

void add_cell(BenchSummary& summary, const std::string& label,
              const CellResult& cell) {
  const loadgen::SloReport& r = cell.report;
  summary.add(label + "/offered", static_cast<double>(r.offered), "count");
  summary.add(label + "/completed", static_cast<double>(r.completed),
              "count");
  summary.add(label + "/goodput", r.goodput_rps, "rps");
  summary.add(label + "/p50", r.p50_ms, "ms");
  summary.add(label + "/p99", r.p99_ms, "ms");
  summary.add(label + "/p999", r.p999_ms, "ms");
  summary.add(label + "/violation_frac", r.violation_fraction, "fraction");
  summary.add(label + "/gateway_requests",
              static_cast<double>(cell.gateway_requests), "count");
}

}  // namespace

int main(int argc, char** argv) {
  MixParams params;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      params.functions = 8;
      params.window = milliseconds(120);
    }
  }
  params.shards = shards_from_args(argc, argv);

  print_header("Supplementary: traffic mix (Zipf + burst, open loop)");
  std::printf("  %zu functions, Zipf %.1f, base %.0f rps with bursts to "
              "%.0f rps,\n  deadline %.1f ms, window %.0f ms\n\n",
              params.functions, params.zipf_s, params.base_rps,
              params.burst_rps, to_ms(params.deadline),
              to_ms(params.window));

  BenchSummary summary("supp_traffic_mix", params.seed, params.shards);

  const CellResult nic = run_cell(
      {backends::BackendKind::kLambdaNic, backends::BackendKind::kLambdaNic},
      params);
  const CellResult host = run_cell(
      {backends::BackendKind::kContainer, backends::BackendKind::kContainer},
      params);
  const CellResult hybrid = run_cell(
      {backends::BackendKind::kLambdaNic, backends::BackendKind::kContainer},
      params);

  print_cell("2x nic", nic);
  print_cell("2x container", host);
  print_cell("nic+container", hybrid);
  add_cell(summary, "nic", nic);
  add_cell(summary, "host", host);
  add_cell(summary, "hybrid", hybrid);

  std::printf("\n  hottest function offered (gauge): %.0f rps of %.0f rps "
              "total demand\n",
              nic.offered_rps_gauge, nic.report.offered_rps);
  std::printf("\n  Open-loop bursts expose what closed-loop tests hide:\n"
              "  the NIC pool absorbs the burst inside the deadline, the\n"
              "  container pool queues for the whole burst (intended-\n"
              "  arrival p99 counts the stall), and the unweighted hybrid\n"
              "  inherits the slower half's tail.\n");
  return 0;
}
