// Supplementary figure (ours): heterogeneous placement. A 4-worker
// cluster sweeps its SmartNIC share from 0 to 4 (remaining workers are
// bare-metal hosts) under the NicFirst policy. Whenever at least one NIC
// is present the standard bundle is NIC-resident and latency/throughput
// match the all-NIC cluster; with none it falls back to the hosts.
// A second experiment deploys a bundle whose web server exceeds the
// 16 K-word instruction store on a mixed 2 NIC + 2 host pool: the
// manager spills only that lambda to the hosts, so its cost stays
// isolated from the still-NIC-resident key-value client.
#include <cstdio>
#include <functional>
#include <string>

#include "bench/harness.h"
#include "core/cluster.h"

using namespace lnic;
using namespace lnic::bench;

namespace {

struct LoadResult {
  double rps = 0.0;
  double p99_ms = 0.0;
};

/// Closed-loop senders through the cluster gateway until `total`
/// requests complete (etcd disabled, so the event queue drains).
LoadResult drive(core::Cluster& cluster, const std::string& fn,
                 const PayloadFn& payload, std::uint32_t concurrency,
                 std::uint64_t total) {
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  const SimTime start = cluster.sim().now();
  std::function<void()> issue = [&]() {
    if (issued >= total) return;
    const std::uint64_t i = issued++;
    cluster.invoke(fn, payload(i), [&](Result<proto::RpcResponse> r) {
      if (r.ok()) ++completed;
      issue();
    });
  };
  for (std::uint32_t c = 0; c < concurrency && c < total; ++c) issue();
  cluster.sim().run();
  LoadResult result;
  const SimDuration window = cluster.sim().now() - start;
  result.rps = window > 0 ? static_cast<double>(completed) / to_sec(window)
                          : 0.0;
  result.p99_ms = cluster.gateway().latency(fn).p99() / 1e6;
  return result;
}

PayloadFn web_payload() {
  return [](std::uint64_t i) { return workloads::encode_web_request(i & 3); };
}

}  // namespace

int main() {
  print_header("Supplementary: heterogeneous placement (NicFirst)");
  BenchSummary summary("supp_hybrid_placement", /*seed=*/7);

  std::printf("\n-- NIC share sweep, web server @56 senders --\n");
  std::printf("  %6s %6s %14s %14s   placement\n", "NICs", "hosts", "req/s",
              "p99 (ms)");
  for (std::uint32_t nics = 0; nics <= 4; ++nics) {
    core::ClusterConfig config;
    config.with_etcd = false;
    config.worker_kinds.assign(nics, backends::BackendKind::kLambdaNic);
    config.worker_kinds.resize(4, backends::BackendKind::kBareMetal);
    core::Cluster cluster(config);
    auto record = cluster.deploy(workloads::make_standard_workloads());
    if (!record.ok()) {
      std::fprintf(stderr, "deploy failed: %s\n",
                   record.error().message.c_str());
      return 1;
    }
    cluster.wait_until_ready();
    // Hosts only serve when no NIC exists; keep their runs short.
    const std::uint64_t total = nics > 0 ? 3000 : 672;
    const LoadResult r = drive(cluster, "web_server", web_payload(), 56,
                               total);
    const char* placement = nics > 0 ? "NIC-resident" : "host fallback";
    std::printf("  %6u %6u %14.0f %14.3f   %s\n", nics, 4 - nics, r.rps,
                r.p99_ms, placement);
    const std::string cell = "nic_share/" + std::to_string(nics);
    summary.add(cell + "/rps", r.rps, "req/s");
    summary.add(cell + "/p99", r.p99_ms, "ms");
  }

  std::printf("\n-- Oversize web server on 2 NIC + 2 host pool --\n");
  {
    workloads::Scale scale;
    scale.web_mix_rounds = 6000;  // past the 16 K-word store
    core::ClusterConfig config;
    config.with_etcd = false;
    config.worker_kinds = {
        backends::BackendKind::kLambdaNic, backends::BackendKind::kLambdaNic,
        backends::BackendKind::kBareMetal, backends::BackendKind::kBareMetal};
    core::Cluster cluster(config);
    auto record = cluster.deploy(workloads::make_standard_workloads(scale));
    if (!record.ok()) {
      std::fprintf(stderr, "deploy failed: %s\n",
                   record.error().message.c_str());
      return 1;
    }
    for (const auto& placement : record.value().placements) {
      std::printf("  %-20s ->", placement.function.c_str());
      for (const auto& replica : placement.replicas) {
        std::printf(" %s", backends::to_string(replica.kind));
      }
      std::printf("\n");
    }
    cluster.wait_until_ready();
    const LoadResult web = drive(cluster, "web_server", web_payload(), 56,
                                 672);
    const LoadResult kv = drive(
        cluster, "kv_client_get",
        [](std::uint64_t i) { return workloads::encode_kv_request(i % 64); },
        56, 3000);
    std::printf("\n  %-20s %14s %14s\n", "function", "req/s", "p99 (ms)");
    std::printf("  %-20s %14.0f %14.3f   (spilled to hosts)\n", "web_server",
                web.rps, web.p99_ms);
    std::printf("  %-20s %14.0f %14.3f   (NIC-resident)\n", "kv_client_get",
                kv.rps, kv.p99_ms);
    summary.add("oversize/web_server/rps", web.rps, "req/s");
    summary.add("oversize/web_server/p99", web.p99_ms, "ms");
    summary.add("oversize/kv_client_get/rps", kv.rps, "req/s");
    summary.add("oversize/kv_client_get/p99", kv.p99_ms, "ms");
  }

  std::printf("\n  any NIC share keeps the bundle NIC-resident at NIC\n"
              "  latency; only lambdas that cannot fit pay the host cost,\n"
              "  and that cost stays isolated to them.\n");
  return 0;
}
