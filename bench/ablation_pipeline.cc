// Ablation (§5 footnote 4): run-to-completion (parse+match+lambda on one
// core, as shipped) versus pipelining the parse/match stage onto
// dedicated cores. RTC is work-conserving, so with the same core budget
// it never loses: statically-partitioned parse cores become the
// bottleneck when the match stage is expensive (naive firmware) and sit
// half-idle once match reduction shrinks it. This quantifies why the
// paper ships RTC and leaves pipelining as future work.
#include <cstdio>
#include <functional>

#include "bench/harness.h"

using namespace lnic;
using namespace lnic::bench;

namespace {

struct RunResult {
  double rps;
  double p99_ms;
};

RunResult run(bool pipelined, bool optimized) {
  sim::Simulator sim;
  net::Network network(sim);
  nicsim::NicConfig config = backends::lambda_nic_config();
  config.islands = 1;
  config.cores_per_island = 6;
  config.reserved_cores = 2;      // 4 usable cores
  config.threads_per_core = 4;
  config.pipeline_stages = pipelined;
  config.parse_match_cores = 1;   // 1 of the 4 runs parse+match
  config.max_queue_depth = 1u << 20;
  nicsim::SmartNic nic(sim, network, config);

  auto bundle = workloads::make_web_farm(3);
  compiler::Options options;
  if (!optimized) options = compiler::Options::none();
  auto compiled = compiler::compile(bundle.spec, std::move(bundle.lambdas),
                                    options);
  if (!compiled.ok()) return {};
  (void)nic.deploy(std::move(compiled).value());
  sim.run_until(seconds(16));

  proto::RpcConfig rpc;
  rpc.retransmit_timeout = seconds(600);
  proto::RpcClient client(sim, network, rpc);
  std::uint64_t done = 0;
  Sampler lat;
  std::function<void(int)> issue = [&](int t) {
    client.call(nic.node(), static_cast<WorkloadId>(t % 3 + 1),
                workloads::encode_web_request(0),
                [&, t](Result<proto::RpcResponse> r) {
                  if (r.ok()) {
                    ++done;
                    lat.add(static_cast<double>(r.value().latency));
                  }
                  issue(t + 1);
                });
  };
  for (int c = 0; c < 64; ++c) issue(c);
  const SimTime start = sim.now();
  sim.run_until(sim.now() + seconds(1));
  return RunResult{static_cast<double>(done) / to_sec(sim.now() - start),
                   lat.p99() / 1e6};
}

}  // namespace

int main() {
  print_header("Ablation: run-to-completion vs pipelined parse/match stage");
  std::printf("\n  %-34s %12s %10s\n", "configuration", "req/s", "p99");
  for (const bool optimized : {false, true}) {
    const RunResult rtc = run(false, optimized);
    const RunResult pipe = run(true, optimized);
    const char* fw = optimized ? "optimized fw" : "naive fw   ";
    std::printf("  RTC        (%s)             %12.0f %8.3fms\n", fw, rtc.rps,
                rtc.p99_ms);
    std::printf("  pipelined  (%s)             %12.0f %8.3fms\n", fw, pipe.rps,
                pipe.p99_ms);
  }
  std::printf("\n  RTC is work-conserving, so with equal cores it dominates: "
              "pipelining loses throughput when the dedicated parse cores "
              "bottleneck (naive firmware) and is at best neutral once match "
              "reduction shrinks the stage — consistent with the paper "
              "shipping RTC and leaving pipelining as future work (§5 fn 4).\n");
  return 0;
}
