// Wall-clock throughput of the discrete-event engine itself.
//
// Unlike the paper-figure benches (which report *simulated* time and are
// byte-deterministic), this suite times the engine with a real clock:
// events/sec through the slot arena for the three mixes that dominate
// real runs — steady-state schedule+dispatch (packet delivery),
// schedule+cancel (RPC retransmit timers that almost always get
// cancelled), and nested reschedule (periodic timers, closed-loop
// senders).
//
// Every closure captures a PayloadCapture (the size of a Packet header
// plus a payload view) because that is what the engine actually carries:
// network delivery closures own the in-flight Packet. Captures this size
// overflow std::function's small-buffer optimization, which is exactly
// the per-event heap allocation the slot arena + InlineFn removed — a
// bench with empty captures would hide the difference.
//
// The deterministic counters (events dispatched, arena footprint) are
// emitted next to the wall-clock rates so CI can sanity-check the run
// shape even though the rates themselves vary by machine.
//
// Usage: perf_engine [--smoke]   (smoke: 10x fewer events, for CI)
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench/harness.h"
#include "sim/simulator.h"

namespace lnic::bench {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Stand-in for the state a packet-delivery closure owns: a Packet is a
/// ~9-word header plus the payload view. Large enough to defeat
/// std::function's inline storage; fits InlineFn<128>.
struct PayloadCapture {
  std::uint64_t words[10] = {};
};

struct MixResult {
  double events_per_sec = 0.0;
  std::uint64_t dispatched = 0;   // deterministic
  std::size_t arena_slots = 0;    // deterministic
};

/// Steady-state schedule+dispatch: a ring of 1024 in-flight events where
/// every handler schedules its successor, the shape of packet delivery
/// on a busy fabric (bounded in-flight set, one schedule per dispatch).
MixResult dispatch_mix(std::uint64_t n) {
  sim::Simulator sim;
  constexpr int kInflight = 1024;
  std::uint64_t count = 0;
  std::uint64_t sink = 0;
  struct Ring {
    sim::Simulator& sim;
    std::uint64_t& count;
    std::uint64_t& sink;
    std::uint64_t n;
    void fire(PayloadCapture pkt) {
      sink += pkt.words[0];
      if (++count + kInflight > n) return;
      pkt.words[0] = count;
      sim.schedule(100, [this, pkt] { fire(pkt); });
    }
  } ring{sim, count, sink, n};
  for (int i = 0; i < kInflight; ++i) {
    PayloadCapture pkt;
    pkt.words[0] = static_cast<std::uint64_t>(i);
    sim.schedule(i, [&ring, pkt] { ring.fire(pkt); });
  }
  const auto t0 = Clock::now();
  sim.run();
  const double s = seconds_since(t0);
  return {static_cast<double>(count) / s, sim.events_dispatched(),
          sim.arena_slots()};
}

/// Schedule a batch, cancel half, drain, repeat. This is the shape of
/// RPC retransmit timers: armed per call, cancelled on the (common)
/// timely response. Cancellation cost and slot recycling dominate.
MixResult cancel_mix(std::uint64_t n) {
  sim::Simulator sim;
  constexpr int kBatch = 1000;
  std::uint64_t count = 0;
  std::vector<sim::EventId> ids;
  ids.reserve(kBatch);
  const auto t0 = Clock::now();
  for (std::uint64_t round = 0; round < n / kBatch; ++round) {
    ids.clear();
    for (int j = 0; j < kBatch; ++j) {
      PayloadCapture pkt;
      pkt.words[0] = static_cast<std::uint64_t>(j);
      ids.push_back(sim.schedule(j, [&count, pkt] {
        ++count;
        (void)pkt;
      }));
    }
    for (int j = 0; j < kBatch; j += 2) sim.cancel(ids[j]);
    sim.run();
  }
  const double s = seconds_since(t0);
  return {static_cast<double>(n) / s, sim.events_dispatched(),
          sim.arena_slots()};
}

/// Schedule the full load up front, then drain: the shape of an
/// open-loop overload backlog (supp_overload, traffic bursts). A binary
/// heap pays O(log n) per event on a million-entry pending set; the
/// calendar wheel stays O(1).
MixResult backlog_mix(std::uint64_t n) {
  sim::Simulator sim;
  std::uint64_t count = 0;
  std::uint64_t sink = 0;
  const auto t0 = Clock::now();
  for (std::uint64_t i = 0; i < n; ++i) {
    PayloadCapture pkt;
    pkt.words[0] = i;
    sim.schedule(static_cast<SimDuration>(i % 100),
                 [&count, &sink, pkt] {
                   ++count;
                   sink += pkt.words[0];
                 });
  }
  sim.run();
  const double s = seconds_since(t0);
  (void)sink;
  return {static_cast<double>(count) / s, sim.events_dispatched(),
          sim.arena_slots()};
}

/// 512 concurrent self-rescheduling chains until N total fires: the
/// shape of periodic timers and closed-loop senders. Exercises slot
/// reuse under a steady small pending set.
MixResult nested_mix(std::uint64_t n) {
  sim::Simulator sim;
  std::uint64_t count = 0;
  struct Chain {
    sim::Simulator& sim;
    std::uint64_t& count;
    std::uint64_t n;
    void tick(PayloadCapture state) {
      if (++count >= n) return;
      state.words[0] = count;
      sim.schedule(10, [this, state] { tick(state); });
    }
  } chain{sim, count, n};
  for (int i = 0; i < 512; ++i) {
    PayloadCapture state;
    state.words[0] = static_cast<std::uint64_t>(i);
    sim.schedule(i, [&chain, state] { chain.tick(state); });
  }
  const auto t0 = Clock::now();
  sim.run();
  const double s = seconds_since(t0);
  return {static_cast<double>(count) / s, sim.events_dispatched(),
          sim.arena_slots()};
}

void report(BenchSummary& out, const char* name, const MixResult& r) {
  std::printf("  %-12s %12.0f events/sec   (%llu dispatched, %zu arena "
              "slots)\n",
              name, r.events_per_sec,
              static_cast<unsigned long long>(r.dispatched), r.arena_slots);
  out.add(std::string(name) + "_events_per_sec", r.events_per_sec,
          "events/s");
  out.add(std::string(name) + "_dispatched",
          static_cast<double>(r.dispatched), "events");
  out.add(std::string(name) + "_arena_slots",
          static_cast<double>(r.arena_slots), "slots");
}

int run(std::uint64_t n) {
  print_header("Perf: event engine wall-clock throughput");
  std::printf("  %llu events per mix, %zu-byte closure captures, "
              "slot-arena engine\n\n",
              static_cast<unsigned long long>(n), sizeof(PayloadCapture));
  BenchSummary out("perf_engine");
  report(out, "dispatch", dispatch_mix(n));
  report(out, "cancel_mix", cancel_mix(n));
  report(out, "backlog", backlog_mix(n));
  report(out, "nested", nested_mix(n));
  return 0;
}

}  // namespace
}  // namespace lnic::bench

int main(int argc, char** argv) {
  std::uint64_t n = 2'000'000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) n = 200'000;
  }
  return lnic::bench::run(n);
}
