#include "bench/harness.h"

#include <cmath>
#include <cstdlib>
#include <cstring>

namespace lnic::bench {

unsigned shards_from_args(int argc, char** argv, unsigned fallback) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--shards=", 9) == 0) {
      return static_cast<unsigned>(std::strtoul(arg + 9, nullptr, 10));
    }
    if (std::strcmp(arg, "--shards") == 0 && i + 1 < argc) {
      return static_cast<unsigned>(std::strtoul(argv[i + 1], nullptr, 10));
    }
  }
  return fallback;
}

bool adaptive_from_args(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--adaptive") == 0) return true;
  }
  return false;
}

std::vector<WorkloadCase> standard_cases(std::uint64_t web_requests,
                                         std::uint64_t kv_requests,
                                         std::uint64_t image_requests,
                                         std::uint32_t image_side) {
  const auto image =
      workloads::make_test_image(image_side, image_side, /*seed=*/42);
  std::vector<WorkloadCase> cases;
  cases.push_back(WorkloadCase{
      "Web Server", workloads::kWebServerId,
      [](std::uint64_t i) { return workloads::encode_web_request(i & 3); },
      web_requests});
  cases.push_back(WorkloadCase{
      "Key-Value Client", workloads::kKvGetId,
      [](std::uint64_t i) {
        return workloads::encode_kv_request(i % 1024);
      },
      kv_requests});
  cases.push_back(WorkloadCase{
      "Image Transformer", workloads::kImageId,
      [image](std::uint64_t) {
        return workloads::encode_image_request(image.width, image.height,
                                               image.rgba);
      },
      image_requests});
  return cases;
}

BackendRig::BackendRig(backends::BackendKind kind,
                       std::uint32_t worker_threads, unsigned shards,
                       bool adaptive)
    : sharded_(shards), network_(sharded_) {
  // The worker island — backend plus its kv cache, so GET/SET traffic
  // stays on-island — lives on shard 1 when sharded; the client (the
  // gateway side of the paper's Fig. 2) keeps shard 0.
  const unsigned island = sharded_.shards() > 1 ? 1 : 0;
  network_.set_attach_shard(island);
  backend_ = backends::make_backend(kind, sharded_.shard(island), network_,
                                    worker_threads);
  cache_ = std::make_unique<kvstore::CacheServer>(sharded_.shard(island),
                                                  network_);
  backend_->set_kv_server(cache_->node());
  network_.set_attach_shard(0);
  proto::RpcConfig rpc;
  rpc.retransmit_timeout = seconds(60);  // lossless fabric: no retransmits
  client_ = std::make_unique<proto::RpcClient>(sharded_.shard(0), network_,
                                               rpc);
  if (adaptive) {
    // The cache only ever answers its co-sharded backend, so it never
    // sends off-shard; declaring that lets the island's EOT report
    // ignore cache timers. Client and backend genuinely talk across the
    // boundary and stay remote-capable.
    network_.set_local_only(cache_->node(), true);
    network_.enable_adaptive_sync();
  }
  // Warm the cache so GET-heavy runs measure hits, as the paper does
  // with pre-loaded (warm) lambdas.
  for (std::uint64_t k = 0; k < 1024; ++k) cache_->put(k, k * 31 + 7);
  auto deployed = backend_->deploy(workloads::make_standard_workloads());
  if (!deployed.ok()) {
    std::fprintf(stderr, "deploy failed: %s\n", deployed.error().message.c_str());
  }
  // Pass firmware-load downtime.
  sharded_.run_until(sharded_.now() + seconds(20));
}

void BackendRig::redeploy(workloads::WorkloadBundle bundle) {
  auto deployed = backend_->deploy(std::move(bundle));
  if (!deployed.ok()) {
    std::fprintf(stderr, "redeploy failed: %s\n",
                 deployed.error().message.c_str());
  }
  sharded_.run_until(sharded_.now() + seconds(20));
}

Sampler BackendRig::run_closed_loop(const WorkloadCase& test,
                                    std::uint32_t concurrency) {
  Sampler latencies;
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  sim::Simulator& sim0 = sharded_.shard(0);
  const SimTime start = sim0.now();

  // Each sender issues its next request as soon as the previous returns
  // (the paper's closed-loop and parallel testing modes, §6.3.1). Every
  // request first clears the gateway's proxy stage — a single Go process
  // with NAT (§6.1.1) — before the latency clock starts at send time.
  // The whole loop lives on shard 0 with the client.
  std::function<void()> issue = [&]() {
    if (issued >= test.requests) return;
    const std::uint64_t i = issued++;
    const SimTime send_at =
        std::max(sim0.now(), gateway_free_at_) + kGatewayProxyTime;
    gateway_free_at_ = send_at;
    sim0.schedule_at(send_at, [this, &test, &latencies, &issue, &completed,
                               i]() {
      client_->call(backend_->node(), test.workload, test.payload(i),
                    [&](Result<proto::RpcResponse> result) {
                      ++completed;
                      if (result.ok()) {
                        latencies.add(
                            static_cast<double>(result.value().latency));
                      }
                      issue();
                    });
    });
  };
  for (std::uint32_t c = 0; c < concurrency && c < test.requests; ++c) {
    issue();
  }
  sharded_.run();
  const SimDuration window = sim0.now() - start;
  last_throughput_ =
      window > 0 ? static_cast<double>(completed) / to_sec(window) : 0.0;
  return latencies;
}

Sampler BackendRig::run_round_robin(const std::vector<WorkloadId>& workloads,
                                    const PayloadFn& payload,
                                    std::uint32_t concurrency,
                                    std::uint64_t total_requests) {
  Sampler latencies;
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  sim::Simulator& sim0 = sharded_.shard(0);
  const SimTime start = sim0.now();
  // Unlike the isolation experiments, contention latency is measured
  // from the moment the request enters the gateway (client-observed),
  // so gateway queueing under 56-way load counts for every backend.
  std::function<void()> issue = [&]() {
    if (issued >= total_requests) return;
    const std::uint64_t i = issued++;
    const WorkloadId wid = workloads[i % workloads.size()];
    const SimTime entered = sim0.now();
    const SimTime send_at =
        std::max(sim0.now(), gateway_free_at_) + kGatewayProxyTime;
    gateway_free_at_ = send_at;
    sim0.schedule_at(send_at, [this, &sim0, &payload, &latencies, &issue,
                               &completed, wid, i, entered]() {
      client_->call(backend_->node(), wid, payload(i),
                    [&, entered](Result<proto::RpcResponse> result) {
                      ++completed;
                      if (result.ok()) {
                        latencies.add(
                            static_cast<double>(sim0.now() - entered));
                      }
                      issue();
                    });
    });
  };
  for (std::uint32_t c = 0; c < concurrency && c < total_requests; ++c) {
    issue();
  }
  sharded_.run();
  const SimDuration window = sim0.now() - start;
  last_throughput_ =
      window > 0 ? static_cast<double>(completed) / to_sec(window) : 0.0;
  return latencies;
}

void print_ecdf_ms(const std::string& label, const Sampler& latencies) {
  std::printf("  %-28s", label.c_str());
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
    std::printf(" p%-3.0f=%9.4fms", p, latencies.percentile(p) / 1e6);
  }
  std::printf("\n");
}

void print_latency_row(const std::string& label, const Sampler& latencies) {
  std::printf("  %-28s mean=%10.4f ms   p50=%10.4f ms   p99=%10.4f ms  (n=%zu)\n",
              label.c_str(), latencies.mean() / 1e6,
              latencies.median() / 1e6, latencies.p99() / 1e6,
              latencies.count());
}

// ---------------------------------------------------------- BenchSummary

namespace {

std::string json_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

BenchSummary::BenchSummary(std::string bench, std::uint64_t seed,
                           unsigned shards)
    : bench_(std::move(bench)), seed_(seed), shards_(shards) {}

BenchSummary::~BenchSummary() { write(); }

void BenchSummary::add(const std::string& metric, double value,
                       const std::string& unit) {
  entries_.push_back(Entry{metric, value, unit});
}

std::string BenchSummary::path() const { return "BENCH_" + bench_ + ".json"; }

void BenchSummary::write() {
  if (written_) return;
  written_ = true;
  std::FILE* f = std::fopen(path().c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench: cannot write %s\n", path().c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"seed\": %llu,\n"
               "  \"shards\": %u,\n  \"metrics\": [\n",
               json_escape(bench_).c_str(),
               static_cast<unsigned long long>(seed_), shards_);
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    if (std::isfinite(e.value)) {
      std::fprintf(f, "    {\"name\": \"%s\", \"value\": %.9g, "
                   "\"unit\": \"%s\"}%s\n",
                   json_escape(e.metric).c_str(), e.value,
                   json_escape(e.unit).c_str(),
                   i + 1 < entries_.size() ? "," : "");
    } else {
      std::fprintf(f, "    {\"name\": \"%s\", \"value\": null, "
                   "\"unit\": \"%s\"}%s\n",
                   json_escape(e.metric).c_str(), json_escape(e.unit).c_str(),
                   i + 1 < entries_.size() ? "," : "");
    }
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\n  wrote %s (%zu metrics)\n", path().c_str(), entries_.size());
}

}  // namespace lnic::bench
