// Wall-clock throughput of the sharded engine: aggregate events/sec vs
// shard count on the cluster mix, across sync modes and placements.
//
// The workload is K self-contained λ-NIC islands (SmartNIC worker + kv
// cache + closed-loop RPC client, all pinned to one shard) with ~1/8 of
// requests aimed at a peer island's NIC. Four configurations per shard
// count:
//
//   ring          peer = next island, round-robin placement, static
//                 sync — the PR 8 baseline, byte-identical results.
//   ring+adaptive peer = next island, locality (block) placement so
//                 most islands are co-sharded with their peer, EOT
//                 adaptive sync with per-node local-only declarations.
//   idle          peer = buddy island (i XOR 1), round-robin placement,
//                 static sync: every pair straddles a shard boundary,
//                 so windows stay one lookahead long.
//   idle+adaptive same pair topology, block placement co-shards every
//                 pair: zero cross-shard traffic, every island is
//                 local-only, all EOT reports are +inf — the engine
//                 collapses the whole run into a handful of windows.
//
// The idle pair shows the optimization's headline: identical simulated
// workload, identical completions, but the adaptive run stops paying a
// barrier every 25 us of simulated time. The ring pair shows locality
// placement cutting cross-shard posts on a topology where extension
// alone cannot help (every shard's frontier stays hot).
//
// Link propagation is raised to 25 us: the lookahead — and with it the
// barrier window — is the physical link delay. Simulated *results*
// (per-request latencies, completion counts) are deterministic per
// (topology, shard count); only wall-clock rates vary by machine.
// hw_threads is recorded so tools/check_perf.py enforces speedup floors
// only where the cores actually exist.
//
// Usage: perf_parallel [--smoke]
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "sim/sharded.h"

namespace lnic::bench {
namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kIslands = 8;

struct Island {
  std::unique_ptr<backends::Backend> nic;
  std::unique_ptr<kvstore::CacheServer> cache;
  std::unique_ptr<proto::RpcClient> client;
  NodeId peer = kInvalidNode;  // target of this island's cross traffic
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  std::function<void()> issue;
};

/// One (topology, placement, sync-mode) configuration of the sweep.
struct RunConfig {
  const char* family;   // JSON cell prefix ("shardsN" + suffix)
  const char* label;    // table row label
  bool pair_topology;   // peer = i ^ 1 instead of (i + 1) % K
  bool locality;        // block placement instead of round-robin
  bool adaptive;        // EOT window extension + local-only declarations
};

constexpr RunConfig kConfigs[] = {
    {"", "ring/static", false, false, false},
    {"_adaptive", "ring/adaptive", false, true, true},
    {"_idle_static", "idle/static", true, false, false},
    {"_idle_adaptive", "idle/adaptive", true, true, true},
};

struct SweepPoint {
  double events_per_sec = 0.0;
  std::uint64_t dispatched = 0;      // measurement window only
  std::uint64_t completed = 0;       // deterministic per shard count
  std::uint64_t cross_posts = 0;
  std::uint64_t windows = 0;
  std::uint64_t windows_extended = 0;
  sim::ShardStats stats;             // busy/barrier/sync stall breakdown
};

std::size_t peer_of(const RunConfig& config, std::size_t i) {
  return config.pair_topology ? (i ^ 1) : (i + 1) % kIslands;
}

unsigned shard_of_island(const RunConfig& config, std::size_t i,
                         unsigned shards) {
  // Block placement keeps neighbors together (islands {0,1} share a
  // shard at 4 shards, {0..3} at 2); round-robin scatters them — the
  // exact PR 8 placement, kept so static cells replay byte-for-byte.
  if (config.locality) {
    return static_cast<unsigned>(i * shards / kIslands);
  }
  return static_cast<unsigned>(i % shards);
}

SweepPoint run_point(const RunConfig& config, unsigned shards,
                     std::uint64_t requests_per_island,
                     std::uint32_t concurrency) {
  sim::ShardedSimulator sharded(shards);
  // Tightened barrier-outlier paging (default 8x-mean): a perf bench
  // wants to hear about smaller stalls than a correctness run does.
  sharded.stats_collector().set_outlier_threshold(6.0);
  net::LinkConfig link;
  link.propagation = microseconds(25);  // lookahead == barrier window
  net::Network network(sharded, link);

  std::vector<Island> islands(kIslands);
  for (std::size_t i = 0; i < kIslands; ++i) {
    const unsigned shard = shard_of_island(config, i, sharded.shards());
    sim::Simulator& sim = sharded.shard(shard);
    network.set_attach_shard(shard);
    Island& island = islands[i];
    island.nic = backends::make_backend(backends::BackendKind::kLambdaNic,
                                        sim, network);
    island.cache = std::make_unique<kvstore::CacheServer>(sim, network);
    island.nic->set_kv_server(island.cache->node());
    proto::RpcConfig rpc;
    rpc.retransmit_timeout = seconds(60);
    island.client = std::make_unique<proto::RpcClient>(sim, network, rpc);
    if (!island.nic->deploy(workloads::make_standard_workloads()).ok()) {
      std::fprintf(stderr, "perf_parallel: deploy failed\n");
      return {};
    }
  }
  network.set_attach_shard(0);
  for (std::size_t i = 0; i < kIslands; ++i) {
    islands[i].peer = islands[peer_of(config, i)].nic->node();
  }

  if (config.adaptive) {
    // Locality declarations, derived from the placement: an island's
    // cache answers only its own NIC; its client sends off-shard only
    // when its peer NIC lives elsewhere; its NIC replies off-shard only
    // when some caller's client lives elsewhere. Each declaration is a
    // hard promise the fabric enforces at send time.
    for (std::size_t i = 0; i < kIslands; ++i) {
      const unsigned home = shard_of_island(config, i, sharded.shards());
      network.set_local_only(islands[i].cache->node(), true);
      const std::size_t peer = peer_of(config, i);
      if (shard_of_island(config, peer, sharded.shards()) == home) {
        network.set_local_only(islands[i].client->node(), true);
      }
      bool callers_local = true;
      for (std::size_t j = 0; j < kIslands; ++j) {
        if (peer_of(config, j) != i) continue;
        if (shard_of_island(config, j, sharded.shards()) != home) {
          callers_local = false;
        }
      }
      if (callers_local) {
        network.set_local_only(islands[i].nic->node(), true);
      }
    }
    network.enable_adaptive_sync();
  }

  sharded.run_until(seconds(20));  // firmware flash

  // Closed loop per island; every callback runs on the island's shard
  // and touches only island-local state.
  for (Island& island : islands) {
    Island* self = &island;
    self->issue = [self, requests_per_island]() {
      if (self->issued >= requests_per_island) return;
      const std::uint64_t i = self->issued++;
      const NodeId target =
          (i % 8 == 7) ? self->peer : self->nic->node();
      self->client->call(target, workloads::kWebServerId,
                         workloads::encode_web_request(i & 3),
                         [self](Result<proto::RpcResponse> result) {
                           if (result.ok()) ++self->completed;
                           self->issue();
                         });
    };
    for (std::uint32_t c = 0; c < concurrency; ++c) self->issue();
  }

  const std::uint64_t before = sharded.events_dispatched();
  const auto t0 = Clock::now();
  sharded.run();
  const double secs =
      std::chrono::duration<double>(Clock::now() - t0).count();

  SweepPoint point;
  point.dispatched = sharded.events_dispatched() - before;
  point.events_per_sec =
      secs > 0 ? static_cast<double>(point.dispatched) / secs : 0.0;
  for (const Island& island : islands) point.completed += island.completed;
  point.cross_posts = sharded.cross_shard_posts();
  point.windows = sharded.windows_executed();
  point.windows_extended = sharded.windows_extended();
  point.stats = sharded.shard_stats();
  return point;
}

/// Worst per-shard deviation of busy + barrier + sync from the run's
/// total wall, in percent. The accounting makes this ~0 by construction;
/// anything above the 1% gate means the collector's identity broke.
double stall_sum_error_pct(const sim::ShardStats& stats) {
  if (stats.total_wall_ns == 0) return 0.0;
  double worst = 0.0;
  for (unsigned s = 0; s < stats.shards; ++s) {
    const double sum = static_cast<double>(
        stats.busy_ns[s] + stats.barrier_ns[s] + stats.sync_wall_ns());
    const double err =
        std::abs(sum - static_cast<double>(stats.total_wall_ns)) /
        static_cast<double>(stats.total_wall_ns) * 100.0;
    worst = std::max(worst, err);
  }
  return worst;
}

int run(std::uint64_t requests_per_island, std::uint32_t concurrency,
        const std::vector<unsigned>& sweep) {
  print_header("Perf: sharded engine, events/sec vs shard count");
  const unsigned hw = std::thread::hardware_concurrency();
  std::printf("  %zu nic islands, %llu requests each, %u-way closed loop, "
              "%u hw thread(s)\n\n",
              kIslands,
              static_cast<unsigned long long>(requests_per_island),
              concurrency, hw);
  std::printf("  %-14s %6s %14s %12s %10s %9s %9s %8s\n", "config", "shards",
              "events/sec", "completed", "x-posts", "windows", "extended",
              "util");

  BenchSummary out("perf_parallel", /*seed=*/1, sweep.back());
  out.add("hw_threads", static_cast<double>(hw), "threads");
  out.add("islands", static_cast<double>(kIslands), "count");

  double base_rate = 0.0;
  double rate_at_4 = 0.0;
  double idle_static_at_4 = 0.0;
  double idle_adaptive_at_4 = 0.0;
  double worst_sum_err = 0.0;
  for (const RunConfig& config : kConfigs) {
    for (const unsigned shards : sweep) {
      const SweepPoint p =
          run_point(config, shards, requests_per_island, concurrency);
      std::printf("  %-14s %6u %14.0f %12llu %10llu %9llu %9llu %8.2f\n",
                  config.label, shards, p.events_per_sec,
                  static_cast<unsigned long long>(p.completed),
                  static_cast<unsigned long long>(p.cross_posts),
                  static_cast<unsigned long long>(p.windows),
                  static_cast<unsigned long long>(p.windows_extended),
                  p.stats.lookahead_utilization);
      const std::string cell =
          "shards" + std::to_string(shards) + config.family;
      out.add(cell + "_events_per_sec", p.events_per_sec, "events/s");
      out.add(cell + "_dispatched", static_cast<double>(p.dispatched),
              "events");
      out.add(cell + "_completed", static_cast<double>(p.completed),
              "requests");
      out.add(cell + "_cross_posts", static_cast<double>(p.cross_posts),
              "events");
      out.add(cell + "_windows", static_cast<double>(p.windows), "windows");
      out.add(cell + "_windows_extended",
              static_cast<double>(p.windows_extended), "windows");
      out.add(cell + "_window_span_ns", p.stats.mean_window_span_ns, "ns");
      // Stall breakdown: *why* a row scales (or plateaus) — a high
      // barrier share means load imbalance across islands, a high sync
      // share means windows too short to amortize the serial merge.
      const double sum_err = stall_sum_error_pct(p.stats);
      worst_sum_err = std::max(worst_sum_err, sum_err);
      std::uint64_t busy_total = 0;
      std::uint64_t barrier_total = 0;
      for (unsigned s = 0; s < p.stats.shards; ++s) {
        busy_total += p.stats.busy_ns[s];
        barrier_total += p.stats.barrier_ns[s];
      }
      out.add(cell + "_busy_ns", static_cast<double>(busy_total), "ns");
      out.add(cell + "_barrier_ns", static_cast<double>(barrier_total), "ns");
      out.add(cell + "_sync_ns", static_cast<double>(p.stats.sync_wall_ns()),
              "ns");
      out.add(cell + "_wall_ns", static_cast<double>(p.stats.total_wall_ns),
              "ns");
      out.add(cell + "_stall_sum_err_pct", sum_err, "%");
      out.add(cell + "_lookahead_util", p.stats.lookahead_utilization,
              "ratio");
      if (shards > 1) {
        std::printf("  -- %s", p.stats.to_string().c_str());
      }
      if (std::strlen(config.family) == 0) {
        if (shards == 1) base_rate = p.events_per_sec;
        if (shards == 4) rate_at_4 = p.events_per_sec;
      }
      if (shards == 4 &&
          std::strcmp(config.family, "_idle_static") == 0) {
        idle_static_at_4 = p.events_per_sec;
      }
      if (shards == 4 &&
          std::strcmp(config.family, "_idle_adaptive") == 0) {
        idle_adaptive_at_4 = p.events_per_sec;
      }
    }
  }
  if (base_rate > 0 && rate_at_4 > 0) {
    const double speedup = rate_at_4 / base_rate;
    std::printf("\n  4-shard speedup over 1 shard (ring/static): %.2fx%s\n",
                speedup,
                hw < 4 ? " (machine has <4 hw threads; not meaningful)"
                       : "");
    out.add("speedup_4x", speedup, "ratio");
  }
  if (idle_static_at_4 > 0 && idle_adaptive_at_4 > 0) {
    const double speedup = idle_adaptive_at_4 / idle_static_at_4;
    std::printf("  adaptive+locality speedup at 4 shards (idle frontier): "
                "%.2fx%s\n",
                speedup,
                hw < 4 ? " (machine has <4 hw threads; not meaningful)"
                       : "");
    out.add("idle_speedup_4x", speedup, "ratio");
  }
  std::printf("  worst stall-breakdown sum error: %.3f%% of wall\n",
              worst_sum_err);
  if (worst_sum_err > 1.0) {
    return bench_fail("stall breakdown does not sum to wall time (" +
                      std::to_string(worst_sum_err) + "% off)");
  }
  return 0;
}

}  // namespace
}  // namespace lnic::bench

int main(int argc, char** argv) {
  std::uint64_t requests = 20'000;
  std::vector<unsigned> sweep = {1, 2, 4, 8};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      requests = 2'000;
      sweep = {1, 2, 4};
    }
  }
  return lnic::bench::run(requests, /*concurrency=*/16, sweep);
}
