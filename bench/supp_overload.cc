// Supplementary figure (ours): the adaptive D3 transport and the
// gateway's overload controls under loss and overload.
//
// Three experiments, all on the same 4-worker echo rig:
//  1. Loss sweep — closed-loop traffic under steady packet loss plus one
//     1-second full outage. The fixed 50 ms retransmission timer stalls
//     every dropped exchange for 50 ms and hammers the outage at a
//     constant rate; the adaptive RTO (Jacobson/Karels srtt + 4*rttvar,
//     exponential backoff) recovers at network RTT scale and backs off
//     through the outage: lower p99, fewer retransmissions.
//  2. Overload — open-loop arrivals at 2x worker capacity. Without the
//     limiter the worker queues (and latency) grow with the run length;
//     with a concurrency cap + bounded queue the excess is shed fast
//     with a distinct overload error while admitted p99 stays bounded.
//  3. Recovery — a worker goes dark for a loss burst and comes back. The
//     gateway quarantines it on failover, the health checker probes it,
//     and the first successful probe reinstates it: it serves traffic
//     again with no manager intervention.
#include <cstdio>
#include <functional>

#include "bench/harness.h"
#include "framework/gateway.h"
#include "framework/health.h"
#include "loadgen/generator.h"

using namespace lnic;
using namespace lnic::bench;

namespace {

/// N workers that echo requests after a fixed service time, serialized
/// per worker (one NPU/CPU slot each) so overload shows up as queueing.
struct EchoPool {
  sim::Simulator& sim;
  net::Network& network;
  SimDuration service;
  std::vector<NodeId> nodes;
  std::vector<SimTime> free_at;
  std::vector<std::uint64_t> served;
  std::vector<bool> alive;

  EchoPool(sim::Simulator& s, net::Network& net, std::uint32_t n,
           SimDuration service_time)
      : sim(s), network(net), service(service_time) {
    free_at.assign(n, 0);
    served.assign(n, 0);
    alive.assign(n, true);
    for (std::uint32_t i = 0; i < n; ++i) {
      nodes.push_back(network.attach(nullptr));
      network.set_handler(nodes[i], [this, i](const net::Packet& p) {
        if (!alive[i] || p.kind != net::PacketKind::kRequest) return;
        const SimTime start = std::max(sim.now(), free_at[i]);
        free_at[i] = start + service;
        net::Packet reply;
        reply.src = nodes[i];
        reply.dst = p.src;
        reply.kind = net::PacketKind::kResponse;
        reply.lambda = p.lambda;
        reply.payload = {0};
        sim.schedule(free_at[i] - sim.now(), [this, i, reply] {
          ++served[i];
          network.send(reply);
        });
      });
    }
  }
};

struct LossResult {
  double p99_ms = 0.0;
  std::uint64_t retransmissions = 0;
  std::uint64_t failures = 0;
};

/// Closed-loop senders under `loss` steady drop probability, plus one
/// 1-second full outage (drop = 1.0) starting at t = 20 ms. Steady drops
/// are where the adaptive RTO wins on recovery latency (RTT-scale
/// retransmit instead of a 50 ms stall); the outage is where backoff
/// wins on retransmission count (the fixed timer blindly fires every
/// 50 ms for the whole second).
LossResult run_loss(bool adaptive, double loss, std::uint32_t senders,
                    std::uint64_t total) {
  sim::Simulator sim;
  net::Network network(sim, net::LinkConfig{},
                       net::FaultConfig{.drop_probability = loss},
                       /*seed=*/5);
  EchoPool pool(sim, network, 4, microseconds(20));

  framework::GatewayConfig config;
  config.failover_attempts = 0;  // isolate the transport comparison
  config.rpc.adaptive = adaptive;
  config.rpc.max_retries = 60;  // both modes must survive the outage
  config.rpc.min_rto = microseconds(500);  // comfortably above the RTT
  config.rpc.max_rto = seconds(1);
  framework::Gateway gateway(sim, network, config);
  gateway.register_function("f", 1, pool.nodes);

  sim.schedule(milliseconds(20), [&] {
    network.set_faults(net::FaultConfig{.drop_probability = 1.0});
    sim.schedule(seconds(1), [&] {
      network.set_faults(net::FaultConfig{.drop_probability = loss});
    });
  });

  std::uint64_t issued = 0;
  std::function<void()> issue = [&]() {
    if (issued >= total) return;
    ++issued;
    gateway.invoke("f", {1}, [&](Result<proto::RpcResponse>) { issue(); });
  };
  for (std::uint32_t c = 0; c < senders; ++c) issue();
  sim.run();

  LossResult result;
  result.p99_ms = gateway.latency("f").p99() / 1e6;
  result.retransmissions = gateway.rpc().retransmissions();
  result.failures = gateway.rpc().failures();
  return result;
}

struct OverloadResult {
  double admitted_p99_ms = 0.0;
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;
  double shed_latency_p99_ms = 0.0;
};

/// Open-loop arrivals at `rate` req/s against 4 workers * 1/service
/// capacity, for `window` of simulated time.
OverloadResult run_overload(bool limited, double rate, SimDuration window) {
  sim::Simulator sim;
  net::Network network(sim);
  EchoPool pool(sim, network, 4, microseconds(100));  // 40 k req/s capacity

  framework::GatewayConfig config;
  config.rpc.retransmit_timeout = seconds(600);  // queueing, not loss
  if (limited) {
    config.max_inflight_per_function = 8;
    config.max_queue_depth = 32;
    config.queue_deadline = milliseconds(2);
  }
  framework::Gateway gateway(sim, network, config);
  gateway.register_function("f", 1, pool.nodes);

  OverloadResult result;
  Sampler shed_latency;
  // Deterministic open-loop arrivals, driven by the loadgen subsystem
  // (fixed-rate gap == the old hand-rolled 1e9/rate PeriodicTimer, so
  // arrivals — and the bench output — are unchanged). Offered-load
  // gauges land in the gateway registry next to gateway_*.
  loadgen::LoadGenConfig lg;
  lg.arrivals = loadgen::ArrivalSpec::fixed(rate);
  std::vector<loadgen::FunctionProfile> profiles(1);
  profiles[0].name = "f";
  loadgen::LoadGenerator arrival(
      sim, lg, profiles,
      [&](const loadgen::Request& req, loadgen::CompletionFn done) {
        const SimTime t0 = req.intended;
        gateway.invoke("f", {1},
                       [&, t0, done](Result<proto::RpcResponse> r) {
                         if (r.ok()) {
                           ++result.ok;
                         } else {
                           ++result.shed;
                           shed_latency.add(
                               static_cast<double>(sim.now() - t0));
                         }
                         done(r.ok());
                       });
      });
  arrival.set_metrics(&gateway.metrics());
  arrival.start();
  sim.run_until(window);
  arrival.stop();
  sim.run();

  result.admitted_p99_ms = gateway.latency("f").p99() / 1e6;
  result.shed_latency_p99_ms =
      shed_latency.empty() ? 0.0 : shed_latency.p99() / 1e6;
  return result;
}

}  // namespace

int main() {
  print_header("Supplementary: adaptive transport + overload control");
  BenchSummary summary("supp_overload", /*seed=*/5);

  // ---- 1. Loss sweep: fixed 50 ms timer vs adaptive RTO ----
  std::printf("\n-- steady loss + one 1 s outage, 16 senders, 8k req --\n");
  std::printf("  %-22s %12s %14s %10s\n", "transport", "p99 (ms)",
              "retransmits", "failures");
  for (const double loss : {0.001, 0.01}) {
    const LossResult fixed = run_loss(false, loss, 16, 8000);
    const LossResult adaptive = run_loss(true, loss, 16, 8000);
    std::printf("  loss %.1f%%\n", loss * 100.0);
    std::printf("    %-20s %12.3f %14llu %10llu\n", "fixed 50 ms", fixed.p99_ms,
                static_cast<unsigned long long>(fixed.retransmissions),
                static_cast<unsigned long long>(fixed.failures));
    std::printf("    %-20s %12.3f %14llu %10llu\n", "adaptive RTO",
                adaptive.p99_ms,
                static_cast<unsigned long long>(adaptive.retransmissions),
                static_cast<unsigned long long>(adaptive.failures));
    const std::string cell = "loss/" + std::to_string(loss);
    summary.add(cell + "/fixed/p99", fixed.p99_ms, "ms");
    summary.add(cell + "/fixed/retx",
                static_cast<double>(fixed.retransmissions), "count");
    summary.add(cell + "/adaptive/p99", adaptive.p99_ms, "ms");
    summary.add(cell + "/adaptive/retx",
                static_cast<double>(adaptive.retransmissions), "count");
  }

  // ---- 2. Overload: 2x capacity, limiter off vs on ----
  std::printf("\n-- 80k req/s offered vs 40k req/s capacity, 200 ms --\n");
  std::printf("  %-22s %14s %10s %10s %16s\n", "admission", "admitted p99",
              "ok", "shed", "shed p99 (ms)");
  const OverloadResult open = run_overload(false, 80000.0, milliseconds(200));
  const OverloadResult lim = run_overload(true, 80000.0, milliseconds(200));
  std::printf("  %-22s %11.3f ms %10llu %10llu %16s\n", "unlimited (queue)",
              open.admitted_p99_ms, static_cast<unsigned long long>(open.ok),
              static_cast<unsigned long long>(open.shed), "-");
  std::printf("  %-22s %11.3f ms %10llu %10llu %16.3f\n",
              "limiter + shedding", lim.admitted_p99_ms,
              static_cast<unsigned long long>(lim.ok),
              static_cast<unsigned long long>(lim.shed),
              lim.shed_latency_p99_ms);
  summary.add("overload/unlimited/p99", open.admitted_p99_ms, "ms");
  summary.add("overload/limited/p99", lim.admitted_p99_ms, "ms");
  summary.add("overload/limited/shed", static_cast<double>(lim.shed),
              "count");
  summary.add("overload/limited/shed_p99", lim.shed_latency_p99_ms, "ms");

  // ---- 3. Quarantine -> probe -> reinstate ----
  std::printf("\n-- worker dark from 0.5 s to 1.5 s, probe every 100 ms --\n");
  {
    sim::Simulator sim;
    net::Network network(sim);
    EchoPool pool(sim, network, 2, microseconds(20));
    framework::GatewayConfig config;
    config.rpc.adaptive = true;
    config.rpc.retransmit_timeout = milliseconds(5);
    config.rpc.max_retries = 3;
    framework::Gateway gateway(sim, network, config);
    gateway.register_function("f", 1, pool.nodes);

    framework::HealthConfig hc;
    hc.probe_interval = milliseconds(100);
    hc.probe_timeout = milliseconds(30);
    hc.max_failures = 2;
    framework::HealthChecker checker(sim, network, gateway, hc);
    for (NodeId n : pool.nodes) checker.watch(n, {1});
    SimTime quarantined_at = -1, reinstated_at = -1;
    checker.set_on_dead([&](NodeId) { quarantined_at = sim.now(); });
    checker.set_on_recovered([&](NodeId) { reinstated_at = sim.now(); });
    checker.start();

    sim.schedule(milliseconds(500), [&] { pool.alive[0] = false; });
    sim.schedule(milliseconds(1500), [&] { pool.alive[0] = true; });

    std::uint64_t ok = 0, failed = 0;
    std::uint64_t served_before_recovery = 0;
    sim.schedule(milliseconds(1500), [&] {
      served_before_recovery = pool.served[0];
    });
    // One request every 2 ms (fixed 500 req/s), on the same open-loop
    // driver as the overload experiment.
    loadgen::LoadGenConfig lg;
    lg.arrivals = loadgen::ArrivalSpec::fixed(500.0);
    std::vector<loadgen::FunctionProfile> profiles(1);
    profiles[0].name = "f";
    loadgen::LoadGenerator load(
        sim, lg, profiles,
        [&](const loadgen::Request&, loadgen::CompletionFn done) {
          gateway.invoke("f", {1},
                         [&, done](Result<proto::RpcResponse> r) {
                           if (r.ok()) {
                             ++ok;
                           } else {
                             ++failed;
                           }
                           done(r.ok());
                         });
        });
    load.start();
    sim.run_until(seconds(3));
    load.stop();
    checker.stop();
    sim.run();

    std::printf("  quarantined at %.0f ms, reinstated at %.0f ms\n",
                to_ms(quarantined_at), to_ms(reinstated_at));
    std::printf("  requests ok %llu, failed %llu\n",
                static_cast<unsigned long long>(ok),
                static_cast<unsigned long long>(failed));
    std::printf("  worker 0 served %llu before recovery, %llu after\n",
                static_cast<unsigned long long>(served_before_recovery),
                static_cast<unsigned long long>(pool.served[0] -
                                                served_before_recovery));
    summary.add("recovery/quarantined_at", to_ms(quarantined_at), "ms");
    summary.add("recovery/reinstated_at", to_ms(reinstated_at), "ms");
    summary.add("recovery/failed", static_cast<double>(failed), "count");
    summary.add("recovery/served_after",
                static_cast<double>(pool.served[0] - served_before_recovery),
                "count");
  }

  std::printf("\n  Adaptive RTO retransmits at RTT scale and backs off\n"
              "  through outages; the limiter bounds admitted latency and\n"
              "  sheds the excess fast; a recovered worker rejoins the\n"
              "  rotation via quarantine -> probe -> reinstate.\n");
  return 0;
}
