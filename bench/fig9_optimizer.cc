// Figure 9: effectiveness of λ-NIC's target-specific optimizations in
// reducing code size (§6.4). The four-lambda program (two key-value
// clients, a web server, an image transformer) is compiled with the
// passes applied cumulatively. Paper's series:
//   8,902 instructions naïve -> -5.11% (lambda coalescing)
//   -> -8.65% (match reduction) -> -9.56% (memory stratification) = 8,050.
#include <cstdio>

#include "bench/harness.h"
#include "compiler/pipeline.h"
#include "microc/interp.h"
#include "workloads/lambdas.h"

using namespace lnic;

int main() {
  std::printf("\n=== Figure 9: optimizer effectiveness (code size) ===\n\n");

  auto bundle = workloads::make_standard_workloads();
  auto result = compiler::compile(bundle.spec, std::move(bundle.lambdas));
  if (!result.ok()) {
    std::fprintf(stderr, "compile failed: %s\n", result.error().message.c_str());
    return 1;
  }
  const auto& stages = result.value().stages;
  const double naive = static_cast<double>(stages.front().code_words);
  bench::BenchSummary summary("fig9_optimizer");
  std::printf("  %-24s %10s %10s   (paper)\n", "stage", "instrs", "delta");
  const char* paper[] = {"8902", "-5.11%", "-8.65%", "-9.56%"};
  for (std::size_t i = 0; i < stages.size(); ++i) {
    std::printf("  %-24s %10llu %9.2f%%   (%s)\n", stages[i].stage.c_str(),
                static_cast<unsigned long long>(stages[i].code_words),
                100.0 * (1.0 - stages[i].code_words / naive),
                i < 4 ? paper[i] : "-");
    summary.add(stages[i].stage,
                static_cast<double>(stages[i].code_words), "words");
  }
  std::printf("\n  final binary: %llu instruction words (paper: 8,050); "
              "fits 16 K store: %s\n",
              static_cast<unsigned long long>(result.value().final_words()),
              result.value().final_words() <= 16384 ? "yes" : "NO");

  // Latency effect of the optimizations (paper: ~6.3 us average
  // improvement): run the web lambda on the NPU model both ways.
  auto run_cycles = [](const microc::Program& program) {
    microc::ObjectStore store(program);
    microc::Machine machine(program, microc::CostModel::npu(), &store);
    microc::Invocation inv;
    inv.headers.fields[microc::kHdrWorkloadId] = workloads::kWebServerId;
    inv.match_data = {1};
    return machine.run(inv).cycles;
  };
  auto unopt_bundle = workloads::make_standard_workloads();
  auto unopt = compiler::compile(unopt_bundle.spec,
                                 std::move(unopt_bundle.lambdas),
                                 compiler::Options::none());
  if (unopt.ok()) {
    const auto c0 = run_cycles(unopt.value().program);
    const auto c1 = run_cycles(result.value().program);
    const auto npu = microc::CostModel::npu();
    std::printf("  web-server service time: %.2f us naive -> %.2f us "
                "optimized (%.2f us saved; paper reports 6.3 us avg)\n",
                to_us(npu.cycles_to_duration(c0)),
                to_us(npu.cycles_to_duration(c1)),
                to_us(npu.cycles_to_duration(c0 - c1)));
  }
  return 0;
}
