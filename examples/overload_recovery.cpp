// Loss burst to recovery, end to end: the fabric blacks out for a
// second, the gateway's transport failures quarantine the workers, the
// health checker keeps probing them, and the first successful probes put
// them back in the rotation — no operator involved. Live traffic flows
// the whole time: requests during the blackout fail fast (bounded by the
// adaptive RTO's backoff) and everything afterwards is served normally.
//
//   $ ./build/examples/overload_recovery [--trace trace.json]
//
// With --trace, every request is traced end to end (including the
// blackout's timed-out attempts) and the run exports Chrome trace_event
// JSON — openable in chrome://tracing or Perfetto.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "backends/backend.h"
#include "common/trace.h"
#include "framework/health.h"
#include "kvstore/cache_server.h"
#include "workloads/lambdas.h"

using namespace lnic;

int main(int argc, char** argv) {
  std::string trace_path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) trace_path = argv[i + 1];
  }

  std::printf("loss burst -> quarantine -> probe -> reinstate\n\n");

  sim::Simulator sim;
  net::Network network(sim);
  trace::TraceRecorder recorder;

  // Two λ-NIC workers running the standard bundle.
  auto w0 = backends::make_backend(backends::BackendKind::kLambdaNic, sim,
                                   network);
  auto w1 = backends::make_backend(backends::BackendKind::kLambdaNic, sim,
                                   network);
  kvstore::CacheServer cache(sim, network);
  w0->set_kv_server(cache.node());
  w1->set_kv_server(cache.node());
  if (!w0->deploy(workloads::make_standard_workloads()).ok()) return 1;
  if (!w1->deploy(workloads::make_standard_workloads()).ok()) return 1;
  sim.run_until(seconds(20));  // boot

  framework::GatewayConfig config;
  config.rpc.adaptive = true;
  config.rpc.retransmit_timeout = milliseconds(10);
  config.rpc.max_retries = 3;
  config.max_inflight_per_function = 16;
  config.max_queue_depth = 32;
  config.queue_deadline = milliseconds(20);
  framework::Gateway gateway(sim, network, config);
  gateway.register_function("web_server", workloads::kWebServerId,
                            {w0->node(), w1->node()});
  if (!trace_path.empty()) {
    gateway.set_tracer(&recorder);
    w0->set_tracer(&recorder);
    w1->set_tracer(&recorder);
  }

  framework::HealthConfig hc;
  hc.probe_interval = milliseconds(100);
  hc.probe_timeout = milliseconds(30);
  hc.max_failures = 2;
  hc.probe_workload = workloads::kWebServerId;
  framework::HealthChecker checker(sim, network, gateway, hc);
  checker.watch(w0->node(), workloads::encode_web_request(0));
  checker.watch(w1->node(), workloads::encode_web_request(0));
  checker.set_on_dead([&](NodeId n) {
    std::printf("  [%7.0f ms] worker %u quarantined\n", to_ms(sim.now()), n);
  });
  checker.set_on_recovered([&](NodeId n) {
    std::printf("  [%7.0f ms] worker %u reinstated\n", to_ms(sim.now()), n);
  });
  checker.start();
  const SimTime t0 = sim.now();

  // The fabric drops everything from +300 ms to +1300 ms.
  sim.schedule(milliseconds(300), [&] {
    std::printf("  [%7.0f ms] fabric blackout begins\n", to_ms(sim.now()));
    network.set_faults(net::FaultConfig{.drop_probability = 1.0});
  });
  sim.schedule(milliseconds(1300), [&] {
    std::printf("  [%7.0f ms] fabric restored\n", to_ms(sim.now()));
    network.set_faults(net::FaultConfig{});
  });

  std::uint64_t ok = 0, errors = 0, ok_after_burst = 0;
  sim::PeriodicTimer load(sim, milliseconds(5), [&] {
    const bool after_burst = sim.now() >= t0 + milliseconds(1300);
    gateway.invoke("web_server", workloads::encode_web_request(1),
                   [&, after_burst](Result<proto::RpcResponse> r) {
                     if (r.ok()) {
                       ++ok;
                       if (after_burst) ++ok_after_burst;
                     } else {
                       ++errors;
                     }
                   });
  });
  load.start();
  sim.run_until(t0 + seconds(3));
  load.stop();
  checker.stop();
  sim.run();

  std::printf("\n  traffic: %llu ok (%llu after the burst), %llu failed "
              "during the blackout\n",
              static_cast<unsigned long long>(ok),
              static_cast<unsigned long long>(ok_after_burst),
              static_cast<unsigned long long>(errors));
  std::printf("  health:  %llu quarantine(s), %llu recovery(ies)\n",
              static_cast<unsigned long long>(checker.quarantines()),
              static_cast<unsigned long long>(checker.recoveries()));
  std::printf("  gateway p99: %.3f ms, quarantined now: %zu\n",
              gateway.latency("web_server").p99() / 1e6,
              gateway.quarantined_count());

  if (!trace_path.empty()) {
    std::ofstream out(trace_path);
    if (!out) {
      std::fprintf(stderr, "cannot write '%s'\n", trace_path.c_str());
      return 1;
    }
    out << recorder.to_chrome_json();
    std::printf("  traces:  %zu spans across %zu request(s) -> %s\n",
                recorder.size(), recorder.trace_ids().size(),
                trace_path.c_str());
  }

  const bool clean = ok_after_burst > 0 && checker.quarantines() >= 1 &&
                     checker.recoveries() == checker.quarantines() &&
                     gateway.quarantined_count() == 0 &&
                     checker.is_healthy(w0->node()) &&
                     checker.is_healthy(w1->node());
  std::printf("\n  %s\n", clean
                              ? "workers rejoined the rotation on their own; "
                                "traffic recovered without intervention."
                              : "unexpected end state!");
  return clean ? 0 : 1;
}
