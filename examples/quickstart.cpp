// Quickstart: bring up a λ-NIC cluster (Fig. 5), deploy the three paper
// workloads, and invoke each through the gateway.
//
//   $ ./build/examples/quickstart
//
// Everything runs in simulated time on the SmartNIC model; the printed
// latencies are what a client of the gateway would observe.
#include <cstdio>

#include "core/cluster.h"
#include "workloads/image.h"
#include "workloads/lambdas.h"

using namespace lnic;

int main() {
  std::printf("λ-NIC quickstart: 4 worker nodes, SmartNIC backend\n\n");

  core::ClusterConfig config;
  config.workers = 4;
  config.backend = backends::BackendKind::kLambdaNic;
  core::Cluster cluster(config);

  auto bundle = workloads::make_standard_workloads();
  auto record = cluster.deploy(workloads::make_standard_workloads());
  if (!record.ok()) {
    std::fprintf(stderr, "deploy failed: %s\n", record.error().message.c_str());
    return 1;
  }
  std::printf("deployed %zu functions; firmware %.1f MiB; workers ready in "
              "%.1f s (firmware flash, §7)\n",
              record.value().functions.size(),
              to_mib(record.value().artifact_bytes),
              to_sec(record.value().startup_time));
  cluster.wait_until_ready();

  // 1. Web server: fetch page 2.
  auto web = cluster.invoke_and_wait("web_server",
                                     workloads::encode_web_request(2));
  if (!web.ok()) return 1;
  std::printf("\nweb_server: %zu B in %.1f us -> \"%.40s...\"\n",
              web.value().payload.size(), to_us(web.value().latency),
              reinterpret_cast<const char*>(web.value().payload.data() + 8));

  // 2. Key-value client: SET then GET through the memcached-like server.
  auto set = cluster.invoke_and_wait("kv_client_set",
                                     workloads::encode_kv_request(7, 4242));
  auto get = cluster.invoke_and_wait("kv_client_get",
                                     workloads::encode_kv_request(7));
  if (!set.ok() || !get.ok()) return 1;
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(get.value().payload[i]) << (8 * i);
  }
  std::printf("kv_client:  SET key=7 value=4242, GET -> %llu (in %.1f us)\n",
              static_cast<unsigned long long>(value),
              to_us(get.value().latency));

  // 3. Image transformer: RGBA -> grayscale over RDMA.
  const auto img = workloads::make_test_image(128, 128, 1);
  auto gray = cluster.invoke_and_wait(
      "image_transformer",
      workloads::encode_image_request(img.width, img.height, img.rgba));
  if (!gray.ok()) return 1;
  const auto reference = workloads::to_grayscale(img);
  std::printf("image:      %ux%u RGBA (%zu B) -> %zu B gray in %.2f ms; "
              "matches reference: %s\n",
              img.width, img.height, img.rgba.size(),
              gray.value().payload.size(), to_ms(gray.value().latency),
              gray.value().payload == reference ? "yes" : "NO");

  std::printf("\ngateway metrics:\n%s", cluster.gateway().metrics().render().c_str());
  return 0;
}
