// Autoscaling (§6.1.1): the OpenFaaS-style autoscaler watches gateway
// request rates and adds worker replicas to the route as load ramps.
// λ-NIC replicas are whole SmartNICs on other worker nodes.
//
//   $ ./build/examples/autoscale_demo
#include <cstdio>

#include "core/cluster.h"
#include "framework/autoscaler.h"
#include "workloads/lambdas.h"

using namespace lnic;

int main() {
  std::printf("Autoscaling web_server across SmartNIC workers\n\n");

  core::ClusterConfig config;
  config.workers = 4;
  config.with_etcd = false;  // keep the event queue drainable for the demo
  core::Cluster cluster(config);
  if (!cluster.deploy(workloads::make_standard_workloads()).ok()) return 1;
  cluster.wait_until_ready();

  // Start with a single replica in the route; the provisioner re-adds
  // workers as the autoscaler asks for more.
  const WorkloadId wid = workloads::kWebServerId;
  cluster.gateway().register_function("web_server", wid,
                                      {cluster.worker(0).node()});

  framework::AutoscalerConfig scaler_config;
  scaler_config.evaluation_period = milliseconds(100);
  scaler_config.target_rps_per_replica = 2000.0;
  scaler_config.max_replicas = 4;
  // Demo-scale hysteresis: the production default cooldown (5 s) is
  // longer than this demo's quiet tail, which would hide the scale-down.
  scaler_config.scale_down_evals = 3;
  scaler_config.scale_down_cooldown = milliseconds(500);
  framework::Autoscaler scaler(
      cluster.sim(), cluster.gateway(), scaler_config,
      [&](const std::string& name, std::uint32_t replicas) {
        std::vector<NodeId> workers;
        for (std::uint32_t i = 0; i < replicas && i < cluster.worker_count();
             ++i) {
          workers.push_back(cluster.worker(i).node());
        }
        cluster.gateway().register_function(name, wid, workers);
        std::printf("  t=%7.0f ms: scaled %s to %u replica(s)\n",
                    to_ms(cluster.sim().now()), name.c_str(), replicas);
      });
  scaler.track("web_server");
  scaler.start();

  // Ramp: 500 -> 8000 rps over 2 seconds.
  std::uint64_t i = 0;
  sim::PeriodicTimer slow(cluster.sim(), microseconds(2000), [&] {
    cluster.invoke("web_server", workloads::encode_web_request(i++ & 3),
                   nullptr);
  });
  sim::PeriodicTimer fast(cluster.sim(), microseconds(125), [&] {
    cluster.invoke("web_server", workloads::encode_web_request(i++ & 3),
                   nullptr);
  });
  slow.start();
  cluster.sim().run_until(cluster.sim().now() + seconds(1));
  std::printf("  ramping load to ~8000 rps...\n");
  fast.start();
  cluster.sim().run_until(cluster.sim().now() + seconds(1));
  fast.stop();
  std::printf("  load dropping back...\n");
  cluster.sim().run_until(cluster.sim().now() + seconds(2));
  slow.stop();
  scaler.stop();
  cluster.sim().run();

  std::printf("\n  final replicas: %u; scale events: %llu; served: %llu\n",
              scaler.replicas("web_server"),
              static_cast<unsigned long long>(scaler.scale_events()),
              static_cast<unsigned long long>(
                  cluster.gateway()
                      .metrics()
                      .counter("gateway_requests_total{fn=web_server}")
                      .value()));
  return 0;
}
