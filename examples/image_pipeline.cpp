// Interactive image-processing service (§2.1's motivating use case:
// "resize images on the fly with Amazon S3, AWS Lambda"): clients upload
// RGBA images; the transformer lambda converts them to grayscale on the
// SmartNIC, with the payload arriving over multi-packet RDMA (D3).
//
//   $ ./build/examples/image_pipeline
#include <cstdio>

#include "core/cluster.h"
#include "workloads/image.h"
#include "workloads/lambdas.h"

using namespace lnic;

int main() {
  std::printf("Image pipeline on λ-NIC (multi-packet RDMA path)\n\n");

  core::ClusterConfig config;
  config.workers = 2;
  core::Cluster cluster(config);
  if (!cluster.deploy(workloads::make_standard_workloads()).ok()) return 1;
  cluster.wait_until_ready();

  Sampler latencies;
  const std::uint32_t sizes[] = {64, 128, 256, 512};
  for (const std::uint32_t side : sizes) {
    const auto img = workloads::make_test_image(side, side, side);
    auto r = cluster.invoke_and_wait(
        "image_transformer",
        workloads::encode_image_request(img.width, img.height, img.rgba));
    if (!r.ok()) {
      std::fprintf(stderr, "invoke failed: %s\n", r.error().message.c_str());
      return 1;
    }
    const bool correct = r.value().payload == workloads::to_grayscale(img);
    const std::size_t frags =
        (img.rgba.size() + 8 + net::kMaxPayload - 1) / net::kMaxPayload;
    latencies.add(static_cast<double>(r.value().latency));
    std::printf("  %4ux%-4u  %7zu B in %4zu RDMA fragments -> %7zu B gray, "
                "%8.3f ms  [%s]\n",
                img.width, img.height, img.rgba.size(), frags,
                r.value().payload.size(), to_ms(r.value().latency),
                correct ? "ok" : "MISMATCH");
  }
  std::printf("\n  latency: min %.3f ms, max %.3f ms — scales with pixels, "
              "not with host CPU load (the host stays idle).\n",
              latencies.min() / 1e6, latencies.max() / 1e6);
  return 0;
}
