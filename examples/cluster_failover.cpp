// Framework fault tolerance: the etcd (Raft) store that holds lambda
// routes survives the loss of its leader (§6.1.1), and the gateway keeps
// serving from its watched route table throughout.
//
//   $ ./build/examples/cluster_failover
#include <cstdio>

#include "core/cluster.h"
#include "workloads/lambdas.h"

using namespace lnic;

namespace {

bool ping(core::Cluster& cluster, const char* when) {
  auto r = cluster.invoke_and_wait("web_server",
                                   workloads::encode_web_request(0));
  std::printf("  [%-22s] web_server -> %s (%.1f us)\n", when,
              r.ok() ? "ok" : r.error().message.c_str(),
              r.ok() ? to_us(r.value().latency) : 0.0);
  return r.ok();
}

}  // namespace

int main() {
  std::printf("etcd/Raft failover under live traffic\n\n");

  core::ClusterConfig config;
  config.etcd_nodes = 5;
  core::Cluster cluster(config);
  if (!cluster.deploy(workloads::make_standard_workloads()).ok()) return 1;
  cluster.wait_until_ready();

  if (!ping(cluster, "steady state")) return 1;

  raft::RaftNode* leader = cluster.etcd()->cluster().leader();
  if (leader == nullptr) return 1;
  std::printf("\n  killing etcd leader (node %u, term %llu)...\n",
              leader->index(),
              static_cast<unsigned long long>(leader->current_term()));
  leader->stop();

  // Requests keep flowing: routing state is already synced to the
  // gateway; consensus re-forms in the background.
  if (!ping(cluster, "during re-election")) return 1;
  cluster.sim().run_until(cluster.sim().now() + seconds(3));

  raft::RaftNode* new_leader = cluster.etcd()->cluster().leader();
  if (new_leader == nullptr) {
    std::printf("  no new leader elected!\n");
    return 1;
  }
  std::printf("  new leader: node %u, term %llu\n", new_leader->index(),
              static_cast<unsigned long long>(new_leader->current_term()));

  // Route updates still commit on the surviving majority.
  const Status put = cluster.etcd()->put(
      "route/canary", framework::Gateway::encode_route(99, {1}));
  cluster.sim().run_until(cluster.sim().now() + seconds(2));
  std::printf("  route update after failover: %s\n",
              put.ok() ? "committed" : put.error().message.c_str());
  if (!ping(cluster, "after failover")) return 1;

  std::printf("\n  deployment state survived the leader crash; zero request "
              "loss.\n");
  return 0;
}
