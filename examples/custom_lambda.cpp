// Authoring a lambda the way the paper's users do (§4.1): Micro-C source
// (Listing 2) paired with a P4 match stage (Listing 3), compiled by the
// workload manager and deployed to a SmartNIC-backed cluster.
//
//   $ ./build/examples/custom_lambda
#include <cstdio>

#include "backends/backend.h"
#include "compiler/pipeline.h"
#include "kvstore/cache_server.h"
#include "microc/disasm.h"
#include "microc/frontend.h"
#include "net/network.h"
#include "nicsim/nic.h"
#include "p4/text.h"
#include "proto/rpc.h"
#include "sim/simulator.h"

using namespace lnic;

// A rate-plan calculator: op selects a plan, key carries usage units;
// the lambda prices them with fixed-point arithmetic (no FPU on NPUs,
// §3.1b) and keeps a running per-plan request counter in global memory.
constexpr const char* kLambdaSource = R"(
  global u8 counters[32] hot;

  int price_for(plan, units) {
    // Q16.16 rates: basic 1.25/unit, pro 0.75/unit, bulk 0.40/unit.
    var rate = 81920;                       // 1.25
    if (plan == 1) { rate = 49152; }        // 0.75
    if (plan == 2) { rate = 26214; }        // 0.40
    return fxmul(units << 16, rate) >> 16;  // whole currency units
  }

  int rate_plan() {
    var plan = hdr(op) % 3;
    var units = hdr(key);
    var n = load8(counters, plan * 8) + 1;
    store8(counters, plan * 8, n);
    var total = price_for(plan, units);
    resp_word(total);
    resp_word(n);
    return 0;
  }
)";

constexpr const char* kMatchSource = R"(
  parser {
    extract(workload_id);
    extract(op);
    extract(key);
  }
  table plans { key = { workload_id; } entry (5) -> rate_plan; }
  control ingress { apply(plans); }
)";

int main() {
  std::printf("Custom Micro-C lambda, end to end\n\n");

  auto program = microc::compile_microc(kLambdaSource, "rate-plan");
  if (!program.ok()) {
    std::fprintf(stderr, "micro-c: %s\n", program.error().message.c_str());
    return 1;
  }
  auto spec = p4::parse_p4(kMatchSource);
  if (!spec.ok()) {
    std::fprintf(stderr, "p4: %s\n", spec.error().message.c_str());
    return 1;
  }
  auto firmware = compiler::compile(spec.value(), std::move(program).value());
  if (!firmware.ok()) {
    std::fprintf(stderr, "compile: %s\n", firmware.error().message.c_str());
    return 1;
  }
  std::printf("firmware: %llu instruction words after optimization\n\n",
              static_cast<unsigned long long>(firmware.value().final_words()));
  std::printf("%s\n",
              microc::disassemble(
                  firmware.value().program.functions
                      [firmware.value().program.function_index("price_for")],
                  firmware.value().program)
                  .c_str());

  // Deploy to a SmartNIC and price a few usage reports.
  sim::Simulator sim;
  net::Network network(sim);
  nicsim::SmartNic nic(sim, network, backends::lambda_nic_config());
  if (!nic.deploy(std::move(firmware).value()).ok()) return 1;
  sim.run_until(seconds(16));

  proto::RpcClient client(sim, network);
  struct Case {
    std::uint64_t plan, units, expected;
  };
  const Case cases[] = {
      {0, 100, 125}, {1, 100, 75}, {2, 100, 39}, {0, 8, 10}, {2, 1000, 399}};
  // (0.40 is not exactly representable in Q16.16, so 0.4*100 truncates
  //  to 39 — the price of integer-only NPUs, §3.1b.)
  for (const Case& c : cases) {
    std::vector<std::uint8_t> body(24, 0);
    for (int i = 0; i < 8; ++i) {
      body[i] = static_cast<std::uint8_t>(c.plan >> (8 * i));
      body[8 + i] = static_cast<std::uint8_t>(c.units >> (8 * i));
    }
    std::uint64_t total = 0, count = 0;
    client.call(nic.node(), 5, body, [&](Result<proto::RpcResponse> r) {
      if (!r.ok()) return;
      for (int i = 0; i < 8; ++i) {
        total |= static_cast<std::uint64_t>(r.value().payload[i]) << (8 * i);
        count |= static_cast<std::uint64_t>(r.value().payload[8 + i]) << (8 * i);
      }
    });
    sim.run();
    std::printf("  plan %llu, %4llu units -> %4llu  (expected %4llu, "
                "plan served %llu times)  %s\n",
                static_cast<unsigned long long>(c.plan),
                static_cast<unsigned long long>(c.units),
                static_cast<unsigned long long>(total),
                static_cast<unsigned long long>(c.expected),
                static_cast<unsigned long long>(count),
                total == c.expected ? "ok" : "MISMATCH");
  }
  return 0;
}
