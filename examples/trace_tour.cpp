// Tour of the tracing pipeline on a single worst-case request: a
// multi-fragment (RDMA-write) image invocation whose first transmission
// is swallowed by the fabric, forcing one retransmission. The exported
// span tree shows the full life of the request — gateway admission and
// proxying, the timed-out rpc.attempt, the retry, per-fragment
// reassembly on the NIC, dispatch queueing and NPU execution — and the
// critical-path analyzer decomposes end-to-end latency into components
// that sum exactly to the total.
//
//   $ ./build/examples/trace_tour [--out trace.json]
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "common/trace.h"
#include "core/cluster.h"
#include "workloads/lambdas.h"

using namespace lnic;

int main(int argc, char** argv) {
  std::string out_path = "trace.json";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0) out_path = argv[i + 1];
  }

  std::printf("one traced request: fragmentation + forced retransmit\n\n");

  core::ClusterConfig config;
  config.workers = 1;
  config.gateway.rpc.retransmit_timeout = milliseconds(10);
  core::Cluster cluster(config);

  trace::TraceRecorder recorder;
  cluster.gateway().set_tracer(&recorder);
  cluster.worker(0).set_tracer(&recorder);

  if (!cluster.deploy(workloads::make_standard_workloads()).ok()) {
    std::fprintf(stderr, "deploy failed\n");
    return 1;
  }
  cluster.wait_until_ready();

  // Black-hole the fabric just long enough to kill the first attempt;
  // the 10 ms retransmission timer resends into a healthy network.
  cluster.network().set_faults(net::FaultConfig{.drop_probability = 1.0});
  cluster.sim().schedule(milliseconds(5), [&cluster] {
    cluster.network().set_faults(net::FaultConfig{});
  });

  // 64x64 RGBA (16 KiB): a dozen fragments at the 1400 B MTU.
  const std::vector<std::uint8_t> rgba(64 * 64 * 4, 0x5A);
  auto response = cluster.invoke_and_wait(
      "image_transformer", workloads::encode_image_request(64, 64, rgba));
  if (!response.ok()) {
    std::fprintf(stderr, "request failed: %s\n",
                 response.error().message.c_str());
    return 1;
  }
  std::printf("request ok: latency %.1f us, retries %u\n\n",
              to_us(response.value().latency), response.value().retries);

  const auto traces = recorder.trace_ids();
  if (traces.empty()) {
    std::fprintf(stderr, "no trace recorded\n");
    return 1;
  }
  const auto trace_id = traces.front();

  std::printf("span tree (%zu spans):\n", recorder.trace_spans(trace_id).size());
  for (const auto& span : recorder.trace_spans(trace_id)) {
    std::printf("  %-16s %9.1f us -> %9.1f us  (%s)\n", span.name.c_str(),
                to_us(span.start), to_us(span.end),
                trace::span_component(span).c_str());
  }

  const auto path = recorder.critical_path(trace_id);
  std::printf("\n%s", recorder.critical_path_summary(trace_id).c_str());

  SimDuration sum = 0;
  for (const auto& [name, duration] : path.components) sum += duration;
  const bool clean = response.value().retries >= 1 &&
                     path.component("retransmit") > 0 && sum == path.total;
  std::printf("\ncomponents sum to total: %s (%.1f us of %.1f us)\n",
              sum == path.total ? "yes" : "NO", to_us(sum),
              to_us(path.total));

  std::ofstream out(out_path);
  if (out) {
    out << recorder.to_chrome_json();
    std::printf("wrote %s (%zu spans)\n", out_path.c_str(), recorder.size());
  }
  if (!clean) std::printf("unexpected end state!\n");
  return clean ? 0 : 1;
}
