// Realistic traffic in five steps: 50 functions with Zipf-skewed
// popularity and mixed payload sizes, driven open-loop through the
// gateway with a flat phase followed by a burst phase, then a
// coordinated-omission-safe SLO report.
//
// Open loop means arrivals come from the *schedule*, not from request
// completions — when the cluster slows down, demand does not politely
// slow down with it, and latency is measured from the intended arrival
// time so queueing delay counts.
//
//   $ ./build/examples/traffic_mix
#include <cstdio>

#include "core/cluster.h"
#include "loadgen/generator.h"
#include "workloads/lambdas.h"

using namespace lnic;

int main() {
  std::printf("Traffic mix: 50 functions, Zipf 0.9, flat then burst\n\n");

  // 1. A small SmartNIC cluster. with_etcd=false keeps the event queue
  //    drainable so the demo can run the schedule to completion.
  core::ClusterConfig config;
  config.workers = 3;
  config.with_etcd = false;
  core::Cluster cluster(config);
  if (!cluster.deploy(workloads::make_standard_workloads()).ok()) return 1;
  cluster.wait_until_ready();

  // 2. Fifty function names, all aliased onto the web-server lambda so
  //    every request really executes on a NIC. Payload sizes differ per
  //    function: the head functions ship small requests, the tail is
  //    bimodal (mostly small, occasionally 4 KiB).
  std::vector<NodeId> nodes;
  for (std::size_t i = 0; i < cluster.worker_count(); ++i) {
    nodes.push_back(cluster.worker(i).node());
  }
  std::vector<loadgen::FunctionProfile> profiles(50);
  for (std::size_t rank = 0; rank < profiles.size(); ++rank) {
    profiles[rank].name = loadgen::function_name(rank);
    profiles[rank].payload =
        rank < 10 ? loadgen::PayloadDist::uniform(64, 256)
                  : loadgen::PayloadDist::bimodal(64, 4096, 0.9);
    cluster.gateway().register_function(profiles[rank].name,
                                        workloads::kWebServerId, nodes);
  }

  // 3. The generator: Zipf(0.9) picks which function each arrival hits,
  //    the sink encodes a real web request and tracks the outcome.
  auto run_phase = [&](const char* label, loadgen::ArrivalSpec arrivals,
                       SimDuration window) {
    loadgen::LoadGenConfig lg;
    lg.arrivals = arrivals;
    lg.zipf_s = 0.9;
    lg.duration = window;
    lg.slo.deadline = milliseconds(2);
    loadgen::LoadGenerator generator(
        cluster.sim(), lg, profiles,
        loadgen::gateway_sink(cluster.gateway(),
                              [](const loadgen::Request& request) {
                                return workloads::encode_web_request(
                                    request.id & 3);
                              }));
    generator.set_metrics(&cluster.gateway().metrics());

    const SimTime start = cluster.sim().now();
    generator.start();
    cluster.sim().run_until(start + window);
    generator.stop();
    cluster.sim().run();  // drain

    // 4. The report: percentiles from intended arrival (so queueing
    //    during the burst is charged to the requests that waited), plus
    //    per-function goodput for the hottest ranks.
    std::printf("--- %s ---\n%s\n", label,
                generator.slo().report(window).to_string(5).c_str());
  };

  run_phase("flat: Poisson 3000 rps, 400 ms",
            loadgen::ArrivalSpec::poisson(3000.0), milliseconds(400));
  run_phase("burst: 12000 rps bursts over a 2000 rps floor, 400 ms",
            loadgen::ArrivalSpec::on_off(12000.0, 2000.0, milliseconds(25),
                                         milliseconds(40)),
            milliseconds(400));

  // 5. The same numbers land in the gateway's metrics registry as
  //    loadgen_offered_rps{fn=...} / loadgen_inflight gauges, next to
  //    the gateway_* series — `lnicctl metrics` renders them all.
  std::printf("Zipf head check: fn000 should draw ~%.0fx fn004 traffic\n",
              loadgen::ZipfSelector(50, 0.9, 1).expected_fraction(0) /
                  loadgen::ZipfSelector(50, 0.9, 1).expected_fraction(4));
  return 0;
}
