// Hybrid cluster: mixed SmartNIC / bare-metal / container workers behind
// one gateway, with the workload manager deciding placement (§5, Fig. 2).
//
//   $ ./build/examples/hybrid_cluster
//
// Two deployments are shown. The standard four-lambda bundle fits the
// 16 K-word NIC instruction store, so NicFirst keeps every function
// NIC-resident. A second bundle carries a deliberately oversized web
// server; the manager spills it to the host workers while the small
// lambdas stay on the NICs, and both halves keep serving.
#include <cstdio>

#include "core/cluster.h"
#include "workloads/lambdas.h"

using namespace lnic;

namespace {

void print_placements(const framework::DeploymentRecord& record) {
  std::printf("  placement (policy: %s)\n", record.policy.c_str());
  for (const auto& placement : record.placements) {
    std::printf("    %-20s ->", placement.function.c_str());
    for (const auto& replica : placement.replicas) {
      std::printf(" node%u(%s)", replica.node,
                  backends::to_string(replica.kind));
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  std::printf("λ-NIC hybrid cluster: 2 SmartNIC + 1 bare-metal + 1 container "
              "worker\n\n");

  core::ClusterConfig config;
  config.worker_kinds = {
      backends::BackendKind::kLambdaNic, backends::BackendKind::kLambdaNic,
      backends::BackendKind::kBareMetal, backends::BackendKind::kContainer};
  config.placement = framework::PlacementPolicyKind::kNicFirst;

  // --- Standard bundle: everything fits the NICs. ---
  {
    core::Cluster cluster(config);
    auto record = cluster.deploy(workloads::make_standard_workloads());
    if (!record.ok()) {
      std::fprintf(stderr, "deploy failed: %s\n",
                   record.error().message.c_str());
      return 1;
    }
    std::printf("standard bundle (fits the 16 K instruction store):\n");
    print_placements(record.value());
    cluster.wait_until_ready();
    auto web = cluster.invoke_and_wait("web_server",
                                       workloads::encode_web_request(1));
    if (!web.ok()) return 1;
    std::printf("  web_server via NIC worker: %.1f us\n\n",
                to_us(web.value().latency));
  }

  // --- Oversized web server: the manager spills it to the hosts. ---
  {
    workloads::Scale scale;
    scale.web_mix_rounds = 6000;  // ~5x the standard web lambda
    core::Cluster cluster(config);
    auto record = cluster.deploy(workloads::make_standard_workloads(scale));
    if (!record.ok()) {
      std::fprintf(stderr, "deploy failed: %s\n",
                   record.error().message.c_str());
      return 1;
    }
    std::printf("oversized web server (exceeds the NIC store):\n");
    print_placements(record.value());
    cluster.wait_until_ready();
    auto web = cluster.invoke_and_wait("web_server",
                                       workloads::encode_web_request(1));
    auto kv = cluster.invoke_and_wait("kv_client_get",
                                      workloads::encode_kv_request(3));
    if (!web.ok() || !kv.ok()) return 1;
    std::printf("  web_server via host worker: %.1f us\n"
                "  kv_client_get via NIC worker: %.1f us\n",
                to_us(web.value().latency), to_us(kv.value().latency));
  }
  return 0;
}
