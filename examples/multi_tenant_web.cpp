// Multi-tenant API backend (§6.2a): several tenants' web-server lambdas
// share one SmartNIC. One tenant floods the card; weighted fair queuing
// (§4.2.1 D1) keeps the others' latency bounded.
//
//   $ ./build/examples/multi_tenant_web
#include <cstdio>
#include <functional>

#include "backends/backend.h"
#include "compiler/pipeline.h"
#include "kvstore/cache_server.h"
#include "net/network.h"
#include "nicsim/nic.h"
#include "proto/rpc.h"
#include "sim/simulator.h"
#include "workloads/lambdas.h"

using namespace lnic;

namespace {

struct TenantStats {
  Sampler latency;
  std::uint64_t completed = 0;
};

void run(nicsim::DispatchPolicy policy) {
  sim::Simulator sim;
  net::Network network(sim);
  nicsim::NicConfig config = backends::lambda_nic_config();
  config.islands = 1;  // small card so the flood bites
  config.cores_per_island = 3;
  config.reserved_cores = 2;
  config.threads_per_core = 2;
  config.dispatch = policy;
  config.max_queue_depth = 1u << 20;
  nicsim::SmartNic nic(sim, network, config);
  nic.set_drr_weights({{1, 1}, {2, 1}, {3, 1}});

  auto bundle = workloads::make_web_farm(3);
  auto compiled = compiler::compile(bundle.spec, std::move(bundle.lambdas));
  if (!compiled.ok()) return;
  (void)nic.deploy(std::move(compiled).value());
  sim.run_until(seconds(16));

  proto::RpcConfig rpc;
  rpc.retransmit_timeout = seconds(600);
  proto::RpcClient client(sim, network, rpc);

  TenantStats tenants[3];
  // Tenant 1 floods with 64 closed-loop senders; tenants 2 and 3 each
  // run 2 polite senders.
  std::function<void(int)> issue = [&](int t) {
    client.call(nic.node(), static_cast<WorkloadId>(t + 1),
                workloads::encode_web_request(0),
                [&, t](Result<proto::RpcResponse> r) {
                  if (r.ok()) {
                    tenants[t].latency.add(
                        static_cast<double>(r.value().latency));
                    ++tenants[t].completed;
                  }
                  issue(t);
                });
  };
  for (int c = 0; c < 64; ++c) issue(0);
  for (int c = 0; c < 2; ++c) issue(1);
  for (int c = 0; c < 2; ++c) issue(2);

  sim.run_until(sim.now() + seconds(2));

  std::printf("%s dispatch:\n",
              policy == nicsim::DispatchPolicy::kWfq ? "WFQ" : "uniform");
  for (int t = 0; t < 3; ++t) {
    std::printf("  tenant %d (%s): %8llu done, p99 latency %8.3f ms\n", t + 1,
                t == 0 ? "flooder" : "polite ",
                static_cast<unsigned long long>(tenants[t].completed),
                tenants[t].latency.p99() / 1e6);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Multi-tenant web serving on one SmartNIC\n\n");
  run(nicsim::DispatchPolicy::kUniformRandom);
  run(nicsim::DispatchPolicy::kWfq);
  std::printf("WFQ (D1) holds the polite tenants' tail latency while the\n"
              "flooding tenant saturates the card.\n");
  return 0;
}
