// §7 extension: serving a key-value *store* directly from NIC memory
// (NetCache-style). Compares GET latency against the standard key-value
// client lambda, which must cross the fabric to the memcached server —
// the on-NIC store answers in one network round trip instead of two.
//
//   $ ./build/examples/nic_kv_store
#include <cstdio>

#include "backends/backend.h"
#include "compiler/pipeline.h"
#include "kvstore/cache_server.h"
#include "net/network.h"
#include "proto/rpc.h"
#include "sim/simulator.h"
#include "workloads/lambdas.h"

using namespace lnic;

namespace {

struct Rig {
  sim::Simulator sim;
  net::Network network{sim};
  std::unique_ptr<backends::Backend> backend;
  std::unique_ptr<kvstore::CacheServer> cache;
  std::unique_ptr<proto::RpcClient> client;

  explicit Rig(workloads::WorkloadBundle bundle) {
    backend = backends::make_backend(backends::BackendKind::kLambdaNic, sim,
                                     network);
    cache = std::make_unique<kvstore::CacheServer>(sim, network);
    backend->set_kv_server(cache->node());
    proto::RpcConfig rpc;
    rpc.retransmit_timeout = seconds(60);
    client = std::make_unique<proto::RpcClient>(sim, network, rpc);
    if (!backend->deploy(std::move(bundle)).ok()) std::abort();
    sim.run_until(seconds(20));
  }

  std::pair<std::uint64_t, SimDuration> call(WorkloadId wid,
                                             std::vector<std::uint8_t> body) {
    std::uint64_t value = 0;
    SimDuration latency = 0;
    client->call(backend->node(), wid, std::move(body),
                 [&](Result<proto::RpcResponse> r) {
                   if (!r.ok()) return;
                   for (int i = 0; i < 8 && i < (int)r.value().payload.size();
                        ++i) {
                     value |= static_cast<std::uint64_t>(
                                  r.value().payload[i])
                              << (8 * i);
                   }
                   latency = r.value().latency;
                 });
    sim.run();
    return {value, latency};
  }
};

}  // namespace

int main() {
  std::printf("NIC-hosted key-value store (§7) vs remote memcached\n\n");

  // A. NIC-hosted store: GET/SET terminate on the card.
  Rig nic_store(workloads::make_nic_kv_store(/*slots_log2=*/12));
  Sampler nic_lat;
  for (int i = 0; i < 200; ++i) {
    auto [v, set_lat] = nic_store.call(
        workloads::kNicKvStoreId,
        workloads::encode_kv_store_request(1, 1000 + i, i * 11));
    (void)v;
    (void)set_lat;
  }
  bool all_correct = true;
  for (int i = 0; i < 200; ++i) {
    auto [v, lat] = nic_store.call(
        workloads::kNicKvStoreId,
        workloads::encode_kv_store_request(0, 1000 + i));
    if (v != static_cast<std::uint64_t>(i * 11)) all_correct = false;
    nic_lat.add(static_cast<double>(lat));
  }

  // B. Standard client lambda: the NIC must call out to memcached.
  Rig client_rig(workloads::make_standard_workloads());
  Sampler remote_lat;
  for (int i = 0; i < 200; ++i) client_rig.cache->put(1000 + i, i * 11);
  for (int i = 0; i < 200; ++i) {
    auto [v, lat] = client_rig.call(workloads::kKvGetId,
                                    workloads::encode_kv_request(1000 + i));
    if (v != static_cast<std::uint64_t>(i * 11)) all_correct = false;
    remote_lat.add(static_cast<double>(lat));
  }

  std::printf("  all 400 GETs returned correct values: %s\n",
              all_correct ? "yes" : "NO");
  std::printf("\n  GET latency (mean):\n");
  std::printf("    on-NIC store             %8.1f us\n", nic_lat.mean() / 1e3);
  std::printf("    client -> memcached      %8.1f us\n",
              remote_lat.mean() / 1e3);
  std::printf("\n  Terminating the store on the card removes the extra "
              "fabric round trip (%.1fx faster).\n",
              remote_lat.mean() / nic_lat.mean());
  return 0;
}
